#include "apps/online_mrc.hpp"

#include <algorithm>
#include <cmath>

#include "hist/mrc.hpp"
#include "util/check.hpp"

namespace parda {

void decayed_fold(Histogram& aggregate, const Histogram& window,
                  double decay) {
  if (decay == 1.0) {
    aggregate.merge(window);
    return;
  }
  Histogram next;
  const auto& counts = aggregate.counts();
  for (std::size_t d = 0; d < counts.size(); ++d) {
    if (counts[d] == 0) continue;
    const auto scaled = static_cast<std::uint64_t>(
        std::llround(decay * static_cast<double>(counts[d])));
    next.record(static_cast<Distance>(d), scaled);
  }
  next.record(kInfiniteDistance,
              static_cast<std::uint64_t>(std::llround(
                  decay * static_cast<double>(aggregate.infinities()))));
  next.merge(window);
  aggregate = std::move(next);
}

OnlineMrcMonitor::OnlineMrcMonitor(std::uint64_t bound, std::uint64_t window,
                                   double decay)
    : analyzer_(bound), window_(window), decay_(decay) {
  PARDA_CHECK(bound >= 1);
  PARDA_CHECK(window >= 1);
  PARDA_CHECK(decay > 0.0 && decay <= 1.0);
}

void OnlineMrcMonitor::access(Addr a) {
  current_.record(analyzer_.access(a));
  ++seen_;
  if (seen_ % window_ == 0) roll_window();
}

void OnlineMrcMonitor::feed(std::span<const Addr> refs) {
  while (!refs.empty()) {
    // Slice at the window boundary so rolls happen exactly where the
    // per-reference loop would roll them.
    const std::uint64_t room = window_ - (seen_ % window_);
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(room, refs.size()));
    analyzer_.access_block(refs.first(take), current_);
    seen_ += take;
    refs = refs.subspan(take);
    if (seen_ % window_ == 0) roll_window();
  }
}

void OnlineMrcMonitor::roll_window() {
  decayed_fold(aggregate_, current_, decay_);
  current_.clear();
  ++windows_;
}

Histogram OnlineMrcMonitor::snapshot() const {
  Histogram combined = aggregate_;
  combined.merge(current_);
  return combined;
}

double OnlineMrcMonitor::miss_ratio(std::uint64_t cache_size) const {
  const Histogram combined = snapshot();
  return parda::miss_ratio(combined, cache_size);
}

namespace {

PardaOptions windowed_options(std::uint64_t bound, int num_procs) {
  PardaOptions options;
  options.num_procs = num_procs;
  options.bound = bound;
  options.space_optimized = true;
  return options;
}

}  // namespace

WindowedMrcMonitor::WindowedMrcMonitor(core::PardaRuntime& runtime,
                                       std::uint64_t bound,
                                       std::uint64_t window, double decay,
                                       int num_procs)
    : session_(runtime.session(windowed_options(bound, num_procs))),
      window_(window),
      decay_(decay) {
  PARDA_CHECK(bound >= 1);
  PARDA_CHECK(window >= 1);
  PARDA_CHECK(decay > 0.0 && decay <= 1.0);
  PARDA_CHECK(num_procs >= 1);
  pending_.reserve(window);
}

void WindowedMrcMonitor::access(Addr a) {
  pending_.push_back(a);
  ++seen_;
  if (pending_.size() == window_) roll_window();
}

void WindowedMrcMonitor::feed(std::span<const Addr> refs) {
  while (!refs.empty()) {
    const std::size_t take =
        std::min(refs.size(), static_cast<std::size_t>(window_) -
                                  pending_.size());
    pending_.insert(pending_.end(), refs.begin(), refs.begin() + take);
    seen_ += take;
    refs = refs.subspan(take);
    if (pending_.size() == window_) roll_window();
  }
}

void WindowedMrcMonitor::roll_window() {
  // Abort safety: a failed window job (injected fault, deadline, watchdog
  // abort) drops THIS window's references and rethrows, leaving the
  // monitor usable — the buffer must not stay full, or the next feed()
  // would take zero references per iteration and spin forever.
  Histogram window_hist;
  try {
    window_hist = session_.analyze(pending_).hist;
  } catch (...) {
    pending_.clear();
    ++aborted_;
    throw;
  }
  decayed_fold(aggregate_, window_hist, decay_);
  pending_.clear();
  ++windows_;
}

Histogram WindowedMrcMonitor::snapshot() const {
  Histogram combined = aggregate_;
  if (!pending_.empty()) {
    combined.merge(session_.analyze(pending_).hist);
  }
  return combined;
}

double WindowedMrcMonitor::miss_ratio(std::uint64_t cache_size) const {
  const Histogram combined = snapshot();
  return parda::miss_ratio(combined, cache_size);
}

}  // namespace parda
