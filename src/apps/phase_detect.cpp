#include "apps/phase_detect.hpp"

#include <algorithm>
#include <cmath>

#include "hist/histogram.hpp"
#include "seq/olken.hpp"
#include "tree/splay_tree.hpp"

namespace parda {

double signature_distance(std::span<const double> a,
                          std::span<const double> b) noexcept {
  const std::size_t n = std::max(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = i < a.size() ? a[i] : 0.0;
    const double y = i < b.size() ? b[i] : 0.0;
    acc += std::abs(x - y);
  }
  return acc;
}

PhaseReport detect_phases(std::span<const Addr> trace,
                          const PhaseDetectOptions& options) {
  PhaseReport report;
  if (trace.empty() || options.window == 0) return report;

  // One continuous analyzer across the trace (so window signatures reflect
  // cross-window reuse), histogram snapshot per window.
  OlkenAnalyzer<SplayTree> analyzer;
  for (std::size_t start = 0; start < trace.size();
       start += options.window) {
    const std::size_t end = std::min(start + options.window, trace.size());
    Histogram window_hist;
    for (std::size_t i = start; i < end; ++i) {
      window_hist.record(analyzer.access(trace[i]));
    }
    // Signature: normalized log2 buckets with the infinity mass appended.
    std::vector<std::uint64_t> buckets = window_hist.log2_buckets();
    std::vector<double> sig(buckets.size() + 1, 0.0);
    const auto total = static_cast<double>(window_hist.total());
    if (total > 0) {
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        sig[i] = static_cast<double>(buckets[i]) / total;
      }
      sig.back() =
          static_cast<double>(window_hist.infinities()) / total;
    }
    report.signatures.push_back(std::move(sig));
  }

  for (std::size_t w = 1; w < report.signatures.size(); ++w) {
    const double d =
        signature_distance(report.signatures[w - 1], report.signatures[w]);
    if (d > options.threshold) {
      report.boundaries.push_back(PhaseBoundary{w * options.window, d});
    }
  }
  return report;
}

}  // namespace parda
