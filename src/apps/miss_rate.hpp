// Miss-rate prediction from reuse distance histograms (the application of
// Zhong et al. [20] and Marin & Mellor-Crummey [11] cited in the paper's
// introduction): one analysis pass predicts the miss ratio of every cache
// size; validated here against actual LRU and set-associative simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

struct MissRateReport {
  std::uint64_t cache_words;   // capacity in words
  double predicted;            // from the histogram (fully associative LRU)
  double simulated_lru;        // exact fully associative LRU simulation
  double simulated_set_assoc;  // set-associative LRU simulation
};

/// Predicts the miss ratio at each capacity from the histogram and
/// validates against both simulators over the same trace.
std::vector<MissRateReport> predict_miss_rates(
    std::span<const Addr> trace, const Histogram& hist,
    const std::vector<std::uint64_t>& cache_sizes, std::uint32_t ways = 8);

/// Mean absolute error between predicted and simulated_lru across a report
/// (must be ~0: the prediction is exact for fully associative LRU).
double lru_prediction_error(const std::vector<MissRateReport>& report);

/// Smith's binomial model for set-associative caches (the correction Marin
/// & Mellor-Crummey [11] apply to predict L1/L2 misses from reuse
/// distances): a reference with d distinct intervening blocks misses a
/// (sets x ways) cache with probability P[Binomial(d, 1/sets) >= ways].
double set_assoc_miss_probability(Distance d, std::uint64_t sets,
                                  std::uint32_t ways) noexcept;

/// Expected miss ratio of a set-associative LRU cache predicted from the
/// fully-associative reuse distance histogram via Smith's model.
double predict_set_assoc_miss_ratio(const Histogram& hist,
                                    std::uint64_t sets, std::uint32_t ways);

}  // namespace parda
