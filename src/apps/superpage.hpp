// Page-granularity reuse distance analysis for superpage management
// (Cascaval et al. [3], cited in the paper's introduction: "virtual memory
// management").
//
// Folding the word trace to page numbers and re-running the analysis
// yields, per candidate page size, the TLB miss ratio for any TLB reach —
// the signal an OS needs to decide when backing a region with superpages
// pays off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

/// Word addresses -> page numbers for the given page size (power of two
/// not required).
std::vector<Addr> fold_to_pages(std::span<const Addr> trace,
                                std::uint64_t page_words);

struct PageSizeReport {
  std::uint64_t page_words = 0;
  std::uint64_t pages_touched = 0;  // footprint in pages
  Histogram hist;                   // page-granularity reuse distances

  /// Miss ratio of a fully-associative LRU TLB with `entries` entries.
  double tlb_miss_ratio(std::uint64_t entries) const;
};

/// Analyzes one candidate page size.
PageSizeReport analyze_page_size(std::span<const Addr> trace,
                                 std::uint64_t page_words);

struct SuperpageChoice {
  std::uint64_t page_words = 0;
  double tlb_miss_ratio = 0.0;
  std::uint64_t mapped_words = 0;  // pages_touched * page_words (waste proxy)
};

/// Picks the smallest candidate whose TLB miss ratio comes within
/// `tolerance` of the best achievable across candidates — bigger pages
/// only pay their internal-fragmentation cost when they actually reduce
/// TLB misses.
SuperpageChoice recommend_page_size(std::span<const Addr> trace,
                                    const std::vector<std::uint64_t>& sizes,
                                    std::uint64_t tlb_entries,
                                    double tolerance = 0.01);

}  // namespace parda
