#include "apps/superpage.hpp"

#include "hist/mrc.hpp"
#include "seq/olken.hpp"
#include "util/check.hpp"

namespace parda {

std::vector<Addr> fold_to_pages(std::span<const Addr> trace,
                                std::uint64_t page_words) {
  PARDA_CHECK(page_words >= 1);
  std::vector<Addr> pages;
  pages.reserve(trace.size());
  for (Addr a : trace) pages.push_back(a / page_words);
  return pages;
}

double PageSizeReport::tlb_miss_ratio(std::uint64_t entries) const {
  return miss_ratio(hist, entries);
}

PageSizeReport analyze_page_size(std::span<const Addr> trace,
                                 std::uint64_t page_words) {
  PageSizeReport report;
  report.page_words = page_words;
  const std::vector<Addr> pages = fold_to_pages(trace, page_words);
  report.hist = olken_analysis(pages);
  report.pages_touched = report.hist.infinities();
  return report;
}

SuperpageChoice recommend_page_size(std::span<const Addr> trace,
                                    const std::vector<std::uint64_t>& sizes,
                                    std::uint64_t tlb_entries,
                                    double tolerance) {
  PARDA_CHECK(!sizes.empty());
  std::vector<SuperpageChoice> choices;
  double best = 1.0;
  for (std::uint64_t size : sizes) {
    const PageSizeReport report = analyze_page_size(trace, size);
    const double ratio = report.tlb_miss_ratio(tlb_entries);
    choices.push_back(SuperpageChoice{
        size, ratio, report.pages_touched * size});
    if (ratio < best) best = ratio;
  }
  // Smallest page size (assumed given smallest-first is NOT required —
  // order by page size explicitly) within tolerance of the best ratio.
  const SuperpageChoice* pick = nullptr;
  for (const SuperpageChoice& c : choices) {
    if (c.tlb_miss_ratio <= best + tolerance &&
        (pick == nullptr || c.page_words < pick->page_words)) {
      pick = &c;
    }
  }
  PARDA_CHECK(pick != nullptr);
  return *pick;
}

}  // namespace parda
