#include "apps/miss_rate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cachesim/lru_cache.hpp"
#include "cachesim/set_assoc_cache.hpp"
#include "hist/mrc.hpp"
#include "util/check.hpp"

namespace parda {

std::vector<MissRateReport> predict_miss_rates(
    std::span<const Addr> trace, const Histogram& hist,
    const std::vector<std::uint64_t>& cache_sizes, std::uint32_t ways) {
  std::vector<MissRateReport> report;
  report.reserve(cache_sizes.size());
  for (std::uint64_t size : cache_sizes) {
    PARDA_CHECK(size >= 1);
    LruCache lru(size);
    // Round the set-associative capacity down to a multiple of the
    // associativity (at least one set).
    const std::uint64_t blocks =
        size < ways ? ways : size - size % ways;
    SetAssocCache sa(CacheConfig{blocks, ways, 1});
    for (Addr a : trace) {
      lru.access(a);
      sa.access(a);
    }
    report.push_back(MissRateReport{size, miss_ratio(hist, size),
                                    lru.miss_ratio(), sa.miss_ratio()});
  }
  return report;
}

double set_assoc_miss_probability(Distance d, std::uint64_t sets,
                                  std::uint32_t ways) noexcept {
  if (sets == 0) return 1.0;
  if (d < ways) return 0.0;  // cannot gather `ways` evictors in one set
  if (sets == 1) return 1.0;  // fully associative: d >= ways always misses
  const double p = 1.0 / static_cast<double>(sets);
  const double q = 1.0 - p;
  // P[X >= ways] = 1 - sum_{k < ways} C(d, k) p^k q^(d-k).
  double term = std::pow(q, static_cast<double>(d));  // k = 0
  double below = term;
  for (std::uint32_t k = 1; k < ways; ++k) {
    term *= (static_cast<double>(d) - static_cast<double>(k) + 1.0) /
            static_cast<double>(k) * (p / q);
    below += term;
  }
  const double miss = 1.0 - below;
  return miss < 0.0 ? 0.0 : (miss > 1.0 ? 1.0 : miss);
}

double predict_set_assoc_miss_ratio(const Histogram& hist,
                                    std::uint64_t sets, std::uint32_t ways) {
  if (hist.total() == 0) return 0.0;
  // Incremental evaluation of the binomial tail over ascending d: maintain
  // the ways lowest binomial terms and update them from d to d+1.
  const double p = 1.0 / static_cast<double>(sets);
  const double q = 1.0 - p;
  std::vector<double> terms(ways, 0.0);  // terms[k] = C(d,k) p^k q^(d-k)
  terms[0] = 1.0;                        // d = 0
  double expected_misses = static_cast<double>(hist.infinities());
  const auto& counts = hist.counts();
  for (std::size_t d = 0; d < counts.size(); ++d) {
    if (counts[d] != 0) {
      double below = 0.0;
      for (double t : terms) below += t;
      const double miss = std::max(0.0, 1.0 - below);
      expected_misses += static_cast<double>(counts[d]) * miss;
    }
    // Advance the terms to d+1: C(d+1,k) p^k q^(d+1-k)
    //   = q * C(d,k) p^k q^(d-k) + p * C(d,k-1) p^(k-1) q^(d-k+1).
    double carry = 0.0;
    for (std::uint32_t k = 0; k < ways; ++k) {
      const double next = q * terms[k] + p * carry;
      carry = terms[k];
      terms[k] = next;
    }
  }
  return expected_misses / static_cast<double>(hist.total());
}

double lru_prediction_error(const std::vector<MissRateReport>& report) {
  if (report.empty()) return 0.0;
  double acc = 0.0;
  for (const MissRateReport& r : report) {
    acc += std::abs(r.predicted - r.simulated_lru);
  }
  return acc / static_cast<double>(report.size());
}

}  // namespace parda
