#include "apps/partition.hpp"

#include <limits>

#include "hist/mrc.hpp"
#include "util/check.hpp"

namespace parda {

std::uint64_t stream_misses(const Histogram& hist, std::uint64_t units) {
  return miss_count(hist, units);
}

namespace {

std::uint64_t total_misses(const std::vector<Histogram>& streams,
                           const std::vector<std::uint64_t>& alloc) {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < streams.size(); ++k) {
    total += stream_misses(streams[k], alloc[k]);
  }
  return total;
}

}  // namespace

PartitionResult partition_greedy(const std::vector<Histogram>& streams,
                                 std::uint64_t total_units) {
  PARDA_CHECK(!streams.empty());
  const std::size_t k = streams.size();
  std::vector<std::uint64_t> alloc(k, 0);
  for (std::uint64_t unit = 0; unit < total_units; ++unit) {
    std::size_t best = 0;
    std::int64_t best_gain = -1;
    for (std::size_t s = 0; s < k; ++s) {
      const auto gain = static_cast<std::int64_t>(
          stream_misses(streams[s], alloc[s]) -
          stream_misses(streams[s], alloc[s] + 1));
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    ++alloc[best];
  }
  PartitionResult result{alloc, total_misses(streams, alloc)};
  return result;
}

PartitionResult partition_optimal(const std::vector<Histogram>& streams,
                                  std::uint64_t total_units) {
  PARDA_CHECK(!streams.empty());
  const std::size_t k = streams.size();
  const std::size_t budget = static_cast<std::size_t>(total_units);
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

  // best[s][b]: minimal misses of streams 0..s with b units.
  std::vector<std::vector<std::uint64_t>> best(
      k, std::vector<std::uint64_t>(budget + 1, kInf));
  std::vector<std::vector<std::uint64_t>> choice(
      k, std::vector<std::uint64_t>(budget + 1, 0));

  for (std::size_t b = 0; b <= budget; ++b) {
    best[0][b] = stream_misses(streams[0], b);
    choice[0][b] = b;
  }
  for (std::size_t s = 1; s < k; ++s) {
    for (std::size_t b = 0; b <= budget; ++b) {
      for (std::size_t mine = 0; mine <= b; ++mine) {
        const std::uint64_t rest = best[s - 1][b - mine];
        if (rest == kInf) continue;
        const std::uint64_t cost = rest + stream_misses(streams[s], mine);
        if (cost < best[s][b]) {
          best[s][b] = cost;
          choice[s][b] = mine;
        }
      }
    }
  }

  std::vector<std::uint64_t> alloc(k, 0);
  std::size_t b = budget;
  for (std::size_t s = k; s-- > 0;) {
    alloc[s] = choice[s][b];
    b -= static_cast<std::size_t>(alloc[s]);
  }
  return PartitionResult{alloc, best[k - 1][budget]};
}

PartitionResult partition_even(const std::vector<Histogram>& streams,
                               std::uint64_t total_units) {
  PARDA_CHECK(!streams.empty());
  const std::size_t k = streams.size();
  std::vector<std::uint64_t> alloc(k, total_units / k);
  for (std::size_t s = 0; s < total_units % k; ++s) ++alloc[s];
  return PartitionResult{alloc, total_misses(streams, alloc)};
}

}  // namespace parda
