// Shared-cache interference analysis for co-running workloads.
//
// The paper's introduction and related work (Jiang et al. [8], Schuff et
// al. [15], Petoumenos et al. [14]) motivate reuse distance analysis of
// *interleaved* multi-programmed traces: when K programs share an LRU
// cache, each reference's effective stack distance grows by the
// co-runners' intervening footprint. This module interleaves per-program
// traces, analyzes the combined stream while attributing each distance to
// the originating program, and quantifies the per-program contention
// penalty.
#pragma once

#include <cstdint>
#include <vector>

#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

enum class InterleavePolicy {
  kRoundRobin,  // strict alternation, one reference per stream per turn
  kRandom,      // per-reference uniform choice among non-exhausted streams
};

struct InterleavedTrace {
  std::vector<Addr> addresses;
  std::vector<std::uint32_t> origin;  // producing stream per reference
};

/// Interleaves the streams until all are exhausted. Streams should use
/// disjoint address spaces (e.g. distinct workload regions); shared
/// addresses would model actual data sharing instead of pure contention.
InterleavedTrace interleave_traces(
    const std::vector<std::vector<Addr>>& streams, InterleavePolicy policy,
    std::uint64_t seed = 1);

struct SharedCacheAnalysis {
  Histogram combined;                  // the interleaved stream
  std::vector<Histogram> shared_view;  // per stream, distances in the mix
  std::vector<Histogram> solo_view;    // per stream, run alone

  /// Misses of stream k under a shared LRU cache of size C (its co-runners
  /// inflate its distances) vs alone in a cache of the same size.
  std::uint64_t shared_misses(std::size_t k, std::uint64_t cache) const;
  std::uint64_t solo_misses(std::size_t k, std::uint64_t cache) const;

  /// Contention penalty of stream k at capacity C:
  /// shared misses / solo misses (>= 1 up to sampling noise; 1 = immune).
  double contention_factor(std::size_t k, std::uint64_t cache) const;
};

/// Analyzes the interleaved stream, attributing each reference's distance
/// to its originating stream, and each stream alone.
SharedCacheAnalysis analyze_shared_cache(
    const std::vector<std::vector<Addr>>& streams, InterleavePolicy policy,
    std::uint64_t seed = 1);

}  // namespace parda
