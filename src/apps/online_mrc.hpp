// Online miss-ratio-curve monitoring — the use case the paper's
// conclusions call out ("applications that rely on online analysis, such
// as cache sharing and partitioning"): a long-running consumer feeds
// references as they happen and reads off a fresh, recency-weighted MRC
// at any moment.
//
// The monitor runs a bounded analyzer (Algorithm 7's structure, so state
// stays O(bound)) and folds each completed window's histogram into a
// decayed aggregate: aggregate = decay * aggregate + window. decay = 1
// remembers everything; smaller values track phase changes faster.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/runtime.hpp"
#include "hist/histogram.hpp"
#include "seq/bounded.hpp"
#include "tree/splay_tree.hpp"
#include "util/types.hpp"

namespace parda {

/// Folds a completed window into the decayed aggregate:
/// aggregate = round(decay * aggregate) + window, bin by bin (decay == 1
/// degenerates to a plain merge). Shared by both monitor flavors.
void decayed_fold(Histogram& aggregate, const Histogram& window, double decay);

class OnlineMrcMonitor {
 public:
  /// bound: largest cache size of interest (analysis state stays O(bound));
  /// window: references per aggregation step; decay in (0, 1].
  OnlineMrcMonitor(std::uint64_t bound, std::uint64_t window, double decay);

  /// Feeds one reference.
  void access(Addr a);

  /// Feeds a batch of references: identical tallies and window rolls to
  /// calling access() per reference, but each full window segment goes
  /// through the engine's prefetched process_block path.
  void feed(std::span<const Addr> refs);

  /// Recency-weighted miss ratio at the given cache size (<= bound).
  /// Includes the partially filled current window.
  double miss_ratio(std::uint64_t cache_size) const;

  /// The decayed histogram (counts are scaled by the decay schedule).
  Histogram snapshot() const;

  std::uint64_t references_seen() const noexcept { return seen_; }
  std::uint64_t windows_completed() const noexcept { return windows_; }
  std::uint64_t bound() const noexcept { return analyzer_.bound(); }

 private:
  void roll_window();

  BoundedAnalyzer<SplayTree> analyzer_;
  std::uint64_t window_;
  double decay_;
  Histogram current_;    // in-progress window
  Histogram aggregate_;  // decayed sum of completed windows (scaled)
  std::uint64_t seen_ = 0;
  std::uint64_t windows_ = 0;
};

/// The runtime-backed monitor: instead of analyzing inline on the feeding
/// thread, it buffers each window and analyzes completed windows with the
/// parallel bounded engine on a shared PardaRuntime — every window reuses
/// the runtime's parked workers and cached World rather than spawning a
/// full thread set per window. Windows are analyzed independently (each
/// starts cold), so its histogram equals folding per-window parda_analyze
/// results exactly; cross-window reuses surface as infinities, which the
/// decayed aggregate treats as cold misses.
///
/// The runtime must outlive the monitor. Feeding is single-threaded, but
/// several monitors may share one runtime: window jobs multiplex its pool.
class WindowedMrcMonitor {
 public:
  /// bound/window/decay as OnlineMrcMonitor; num_procs is the rank count
  /// of each per-window analysis job.
  WindowedMrcMonitor(core::PardaRuntime& runtime, std::uint64_t bound,
                     std::uint64_t window, double decay, int num_procs = 2);

  /// Feeds one reference; a completed window triggers one pool job.
  void access(Addr a);

  /// Feeds a batch of references; every window completed inside the batch
  /// triggers its pool job at the same point access() would.
  void feed(std::span<const Addr> refs);

  /// Recency-weighted miss ratio at the given cache size (<= bound).
  /// Includes the partially filled current window (analyzed on demand).
  double miss_ratio(std::uint64_t cache_size) const;

  /// The decayed histogram, including the in-progress window.
  Histogram snapshot() const;

  /// The completed-windows aggregate only — no on-demand analysis of the
  /// in-progress window, so unlike snapshot() it cannot throw. The serving
  /// layer reads this when capturing a quarantined tenant's final state
  /// (analyzing its pending window would just re-trip the fault).
  const Histogram& aggregate() const noexcept { return aggregate_; }

  std::uint64_t references_seen() const noexcept { return seen_; }
  std::uint64_t windows_completed() const noexcept { return windows_; }
  /// Window jobs that aborted (fault injection, deadline, watchdog). Each
  /// such window's references were dropped; see roll_window's contract.
  std::uint64_t windows_aborted() const noexcept { return aborted_; }
  std::uint64_t bound() const noexcept { return session_.options().bound; }

  /// The session's analysis options. Mutating them between feeds is
  /// allowed (the serving layer installs per-tenant fault plans and
  /// deadlines here); changing bound/num_procs mid-stream changes how
  /// subsequent windows are analyzed.
  PardaOptions& options() noexcept { return session_.options(); }

  /// References buffered for the in-progress window.
  std::size_t pending_refs() const noexcept { return pending_.size(); }

  /// Resident-state estimate for per-tenant quota accounting: the window
  /// buffer plus the dense aggregate histogram. O(window + bound) because
  /// bounded windows cap finite distances below `bound`.
  std::uint64_t footprint_bytes() const noexcept {
    return static_cast<std::uint64_t>(pending_.capacity()) * sizeof(Addr) +
           static_cast<std::uint64_t>(aggregate_.counts().capacity()) * 8;
  }

 private:
  void roll_window();

  mutable core::AnalysisSession session_;  // snapshot() analyzes pending refs
  std::uint64_t window_;
  double decay_;
  std::vector<Addr> pending_;  // in-progress window's references
  Histogram aggregate_;        // decayed sum of completed windows (scaled)
  std::uint64_t seen_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace parda
