// Online miss-ratio-curve monitoring — the use case the paper's
// conclusions call out ("applications that rely on online analysis, such
// as cache sharing and partitioning"): a long-running consumer feeds
// references as they happen and reads off a fresh, recency-weighted MRC
// at any moment.
//
// The monitor runs a bounded analyzer (Algorithm 7's structure, so state
// stays O(bound)) and folds each completed window's histogram into a
// decayed aggregate: aggregate = decay * aggregate + window. decay = 1
// remembers everything; smaller values track phase changes faster.
#pragma once

#include <cstdint>

#include "hist/histogram.hpp"
#include "seq/bounded.hpp"
#include "tree/splay_tree.hpp"
#include "util/types.hpp"

namespace parda {

class OnlineMrcMonitor {
 public:
  /// bound: largest cache size of interest (analysis state stays O(bound));
  /// window: references per aggregation step; decay in (0, 1].
  OnlineMrcMonitor(std::uint64_t bound, std::uint64_t window, double decay);

  /// Feeds one reference.
  void access(Addr a);

  /// Recency-weighted miss ratio at the given cache size (<= bound).
  /// Includes the partially filled current window.
  double miss_ratio(std::uint64_t cache_size) const;

  /// The decayed histogram (counts are scaled by the decay schedule).
  Histogram snapshot() const;

  std::uint64_t references_seen() const noexcept { return seen_; }
  std::uint64_t windows_completed() const noexcept { return windows_; }
  std::uint64_t bound() const noexcept { return analyzer_.bound(); }

 private:
  void roll_window();

  BoundedAnalyzer<SplayTree> analyzer_;
  std::uint64_t window_;
  double decay_;
  Histogram current_;    // in-progress window
  Histogram aggregate_;  // decayed sum of completed windows (scaled)
  std::uint64_t seen_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace parda
