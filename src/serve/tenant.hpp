// Per-tenant state for the multi-tenant ingest service (service.hpp): one
// TenantSession owns one tenant's analysis pipeline and walks it through
// the service's degradation ladder:
//
//   kExact       WindowedMrcMonitor — every window analyzed exactly by the
//                shared runtime's parallel bounded engine.
//   kDegraded    FixedSizeSampler — constant-memory SHARDS_adj sampling,
//                entered in place when the exact pipeline's resident state
//                exceeds the tenant's memory quota (the exact aggregate is
//                preserved; only subsequent windows are sampled).
//   kQuarantined terminal — entered when the tenant's window jobs keep
//                aborting (fault injection, deadline, watchdog) past the
//                abort quota, or when the tenant ships a malformed frame.
//                The analysis state is torn down; the final histogram is
//                the last safe aggregate.
//
// TenantSession is NOT thread-safe: MrcService wraps each one in its own
// mutex so tenants never contend with each other above the runtime's own
// FIFO job admission.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "apps/online_mrc.hpp"
#include "comm/comm.hpp"
#include "core/runtime.hpp"
#include "hist/histogram.hpp"
#include "seq/fixed_size_sampler.hpp"
#include "util/types.hpp"

namespace parda::serve {

/// Per-tenant admission limits. Zero means "unlimited" for the rate and
/// byte quotas.
struct TenantQuotas {
  /// Token-bucket refill rate in references/second (burst = one second's
  /// worth). Exceeding it rejects the batch with kRateLimited.
  std::uint64_t max_refs_per_sec = 0;
  /// Largest single ingest batch, in references (kBatchTooLarge beyond).
  std::size_t max_batch_refs = std::size_t{1} << 20;
  /// Cap on buffered window bytes (pending refs + incoming batch); a batch
  /// that would overflow it is rejected with kQueueFull.
  std::uint64_t max_queued_bytes = 0;
  /// Resident analyzer footprint that triggers in-place degradation to
  /// fixed-size sampling. 0 = never degrade.
  std::uint64_t memory_quota_bytes = 0;
  /// FixedSizeSampler budget (distinct tracked addresses) after
  /// degradation.
  std::size_t sampler_tracked = 4096;
  /// Aborted window jobs tolerated before quarantine. The default
  /// quarantines on the first abort; chaos tests raise it to exercise
  /// repeated abort/recovery cycles on the shared pool.
  std::uint64_t max_aborts = 1;
};

/// Per-tenant analysis configuration (the shape of its MRC monitor).
struct TenantConfig {
  std::uint64_t bound = std::uint64_t{1} << 16;
  std::uint64_t window = std::uint64_t{1} << 14;
  double decay = 1.0;
  int num_procs = 2;
  TenantQuotas quotas;
  /// Deterministic fault injection for this tenant's window jobs (test
  /// hook; must outlive the session). Not exposed over HTTP.
  const comm::FaultPlan* fault_plan = nullptr;
};

enum class TenantMode { kExact, kDegraded, kQuarantined };

const char* to_string(TenantMode mode) noexcept;

class TenantSession {
 public:
  TenantSession(std::string name, core::PardaRuntime& runtime,
                const TenantConfig& config);

  const std::string& name() const noexcept { return name_; }
  const TenantConfig& config() const noexcept { return config_; }
  TenantMode mode() const noexcept { return mode_; }

  /// Feeds a batch. In kExact mode a completed window submits one pool
  /// job, which may throw (RankAbortedError, DeadlineExceededError, ...);
  /// the aborted window's references are dropped, aborts() is bumped, and
  /// the exception propagates for the service to apply quarantine policy.
  /// Must not be called in kQuarantined mode.
  void feed(std::span<const Addr> refs);

  /// Token-bucket admission for a batch of `n` references at time `now`.
  /// True = admitted (tokens consumed). Always true when the tenant has no
  /// rate quota.
  bool try_consume(std::size_t n, std::chrono::steady_clock::time_point now);

  /// Switches kExact -> kDegraded in place: the exact pipeline's aggregate
  /// (including its partial window, analyzed exactly one last time) seeds
  /// the degraded aggregate, then the monitor is destroyed and replaced by
  /// a FixedSizeSampler. No-op unless currently kExact.
  void degrade();

  /// Terminal: captures the last safe aggregate (never analyzes pending
  /// references — that could re-trip the fault that got us here), tears
  /// down the analysis state, and rejects all future feeds.
  void quarantine();

  /// The tenant's decayed histogram including in-progress state. In kExact
  /// mode this analyzes the pending window on demand and can therefore
  /// throw; in the other modes it cannot.
  Histogram snapshot() const;

  /// Drain-time flush: folds the in-progress window into the aggregate
  /// (exact analysis or sampler take) and returns the final histogram.
  /// May throw in kExact mode, like snapshot().
  Histogram flush();

  std::uint64_t references_seen() const noexcept { return seen_; }
  std::uint64_t windows_completed() const noexcept;
  std::uint64_t aborts() const noexcept { return aborts_; }
  /// References buffered toward the in-progress window (queue-bytes
  /// quota accounting).
  std::uint64_t pending_refs() const noexcept;
  /// Charges one abort observed outside feed() — a snapshot/flush analysis
  /// that threw — against the tenant's abort quota.
  void record_abort() noexcept { ++aborts_; }
  /// Current sampling rate: 1.0 while exact, the sampler's decayed rate
  /// once degraded.
  double sample_rate() const noexcept;
  /// Resident-state estimate for quota accounting. O(window + bound) while
  /// exact, O(sampler_tracked + bound) once degraded, ~0 once quarantined.
  std::uint64_t footprint_bytes() const noexcept;

 private:
  void roll_degraded_window();

  std::string name_;
  TenantConfig config_;
  TenantMode mode_ = TenantMode::kExact;
  std::unique_ptr<WindowedMrcMonitor> monitor_;  // kExact
  std::unique_ptr<FixedSizeSampler> sampler_;    // kDegraded
  Histogram aggregate_;       // kDegraded/kQuarantined: decayed window sum
  std::uint64_t window_fill_ = 0;  // kDegraded: refs in the current window
  std::uint64_t windows_base_ = 0;  // windows completed before mode change
  std::uint64_t seen_ = 0;
  std::uint64_t aborts_ = 0;
  // Token bucket; initialized on first rated ingest.
  double tokens_ = 0.0;
  bool bucket_primed_ = false;
  std::chrono::steady_clock::time_point last_refill_{};
};

}  // namespace parda::serve
