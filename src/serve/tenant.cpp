#include "serve/tenant.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace parda::serve {

namespace {

/// FNV-1a over the tenant name: a stable per-tenant sampler seed, so a
/// degraded tenant's histogram is reproducible run to run (the chaos test
/// compares against a solo rerun) without correlating sampling decisions
/// across tenants.
std::uint64_t name_seed(const std::string& name) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h | 1;  // never zero
}

}  // namespace

const char* to_string(TenantMode mode) noexcept {
  switch (mode) {
    case TenantMode::kExact:
      return "exact";
    case TenantMode::kDegraded:
      return "degraded";
    case TenantMode::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

TenantSession::TenantSession(std::string name, core::PardaRuntime& runtime,
                             const TenantConfig& config)
    : name_(std::move(name)), config_(config) {
  PARDA_CHECK(config_.window >= 1);
  PARDA_CHECK(config_.quotas.sampler_tracked >= 1);
  monitor_ = std::make_unique<WindowedMrcMonitor>(
      runtime, config_.bound, config_.window, config_.decay,
      config_.num_procs);
  if (config_.fault_plan != nullptr) {
    monitor_->options().run_options.fault_plan = config_.fault_plan;
  }
}

void TenantSession::feed(std::span<const Addr> refs) {
  PARDA_CHECK(mode_ != TenantMode::kQuarantined);
  if (mode_ == TenantMode::kExact) {
    try {
      monitor_->feed(refs);
    } catch (...) {
      ++aborts_;
      // The monitor dropped the aborted window and stays usable; seen_
      // counts the whole batch because admission accepted it.
      seen_ += refs.size();
      throw;
    }
    seen_ += refs.size();
    return;
  }
  // Degraded: sample inline, rolling windows at the same reference counts
  // the exact pipeline would.
  while (!refs.empty()) {
    const std::uint64_t room = config_.window - window_fill_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(room, refs.size()));
    sampler_->process_block(refs.first(take));
    window_fill_ += take;
    seen_ += take;
    refs = refs.subspan(take);
    if (window_fill_ == config_.window) roll_degraded_window();
  }
}

bool TenantSession::try_consume(std::size_t n,
                                std::chrono::steady_clock::time_point now) {
  const std::uint64_t limit = config_.quotas.max_refs_per_sec;
  if (limit == 0) return true;
  const auto cap = static_cast<double>(limit);
  if (!bucket_primed_) {
    bucket_primed_ = true;
    tokens_ = cap;
    last_refill_ = now;
  }
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  if (elapsed > 0.0) {
    tokens_ = std::min(cap, tokens_ + elapsed * cap);
    last_refill_ = now;
  }
  const auto need = static_cast<double>(n);
  if (need > tokens_) return false;
  tokens_ -= need;
  return true;
}

void TenantSession::degrade() {
  if (mode_ != TenantMode::kExact) return;
  // The exact pipeline gets one last exact look at its partial window; if
  // that job aborts, fall back to the completed-windows aggregate (the
  // partial window is dropped, same as any aborted window).
  try {
    aggregate_ = monitor_->snapshot();
  } catch (...) {
    ++aborts_;
    aggregate_ = monitor_->aggregate();
  }
  windows_base_ = monitor_->windows_completed();
  monitor_.reset();
  sampler_ = std::make_unique<FixedSizeSampler>(
      config_.quotas.sampler_tracked, /*distance_cap=*/config_.bound,
      /*initial_rate=*/1.0, name_seed(name_));
  window_fill_ = 0;
  mode_ = TenantMode::kDegraded;
}

void TenantSession::quarantine() {
  if (mode_ == TenantMode::kQuarantined) return;
  if (mode_ == TenantMode::kExact) {
    // Never analyze the pending window here: the fault that caused the
    // quarantine would fire again on the drain path.
    aggregate_ = monitor_->aggregate();
    windows_base_ = monitor_->windows_completed();
    monitor_.reset();
  } else {
    // The sampler cannot abort; its partial window is safe to keep.
    decayed_fold(aggregate_, sampler_->take_window_histogram(),
                 config_.decay);
    sampler_.reset();
  }
  mode_ = TenantMode::kQuarantined;
}

Histogram TenantSession::snapshot() const {
  switch (mode_) {
    case TenantMode::kExact:
      return monitor_->snapshot();
    case TenantMode::kDegraded: {
      // The sampler's in-progress window, without consuming it. The
      // SHARDS_adj correction is only applied at window boundaries, so the
      // partial tail is a slight undercount of near-zero distances.
      Histogram combined = aggregate_;
      combined.merge(sampler_->histogram());
      return combined;
    }
    case TenantMode::kQuarantined:
      return aggregate_;
  }
  return aggregate_;
}

Histogram TenantSession::flush() {
  switch (mode_) {
    case TenantMode::kExact: {
      Histogram final_hist = monitor_->snapshot();
      aggregate_ = final_hist;
      return final_hist;
    }
    case TenantMode::kDegraded:
      if (window_fill_ > 0 || sampler_->sampled_references() > 0) {
        decayed_fold(aggregate_, sampler_->take_window_histogram(),
                     config_.decay);
        window_fill_ = 0;
      }
      return aggregate_;
    case TenantMode::kQuarantined:
      return aggregate_;
  }
  return aggregate_;
}

std::uint64_t TenantSession::windows_completed() const noexcept {
  if (mode_ == TenantMode::kExact) return monitor_->windows_completed();
  return windows_base_;
}

std::uint64_t TenantSession::pending_refs() const noexcept {
  switch (mode_) {
    case TenantMode::kExact:
      return monitor_->pending_refs();
    case TenantMode::kDegraded:
      return window_fill_;
    case TenantMode::kQuarantined:
      return 0;
  }
  return 0;
}

double TenantSession::sample_rate() const noexcept {
  return mode_ == TenantMode::kDegraded ? sampler_->rate() : 1.0;
}

std::uint64_t TenantSession::footprint_bytes() const noexcept {
  switch (mode_) {
    case TenantMode::kExact:
      return monitor_->footprint_bytes();
    case TenantMode::kDegraded:
      return sampler_->footprint_bytes() +
             static_cast<std::uint64_t>(aggregate_.counts().capacity()) * 8;
    case TenantMode::kQuarantined:
      return static_cast<std::uint64_t>(aggregate_.counts().capacity()) * 8;
  }
  return 0;
}

void TenantSession::roll_degraded_window() {
  decayed_fold(aggregate_, sampler_->take_window_histogram(), config_.decay);
  window_fill_ = 0;
  ++windows_base_;
}

}  // namespace parda::serve
