// MrcService: the multi-tenant ingest front end over one shared
// PardaRuntime. Tenants register (programmatically or over HTTP), stream
// references into per-tenant TenantSessions, and read miss-ratio-curve
// snapshots back out. The service owns three robustness layers the bare
// runtime does not have:
//
//   Admission control  every batch passes a typed admission check (rate
//                      quota, batch size, queue bytes, tenant existence,
//                      drain/overload state) before touching the pool;
//                      rejects map onto HTTP 4xx/5xx statuses.
//   Fault isolation    a tenant whose window jobs abort is quarantined
//                      after its abort quota; the shared pool recycles the
//                      poisoned World (World::reset) and every other
//                      tenant's histograms are exactly what solo runs
//                      produce (the chaos test proves bit-equality).
//   Degradation        a tenant over its memory quota is downgraded in
//                      place to fixed-size SHARDS_adj sampling, so its
//                      resident state stops growing; globally, the shed
//                      policy chooses between rejecting new work and
//                      degrading everyone when the service is overloaded.
//
// Thread model: all public methods are thread-safe. A tenant-name map
// mutex guards registration/lookup; each tenant carries its own mutex, so
// concurrent ingests for different tenants only serialize at the
// runtime's FIFO job admission (the paper's parallelism is per job).
// HTTP dispatch (route) runs on the TelemetryServer's single serving
// thread and takes the same locks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "hist/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "serve/tenant.hpp"
#include "util/types.hpp"

namespace parda::serve {

/// Typed admission verdict for every register/ingest attempt. admitted()
/// is true for the first two only; everything else is a rejection whose
/// HTTP status http_status() yields.
enum class Admission {
  kOk,            // 200 accepted, exact pipeline
  kDegraded,      // 200 accepted, tenant is on the sampling pipeline
  kRateLimited,   // 429 token bucket empty
  kQueueFull,     // 429 pending window + batch over max_queued_bytes
  kBatchTooLarge, // 413 batch over max_batch_refs
  kQuarantined,   // 409 tenant is quarantined (terminal)
  kShedding,      // 503 service overloaded, reject-newest policy
  kDraining,      // 503 drain in progress, no new work
  kUnknownTenant, // 404 no such tenant
  kAlreadyExists, // 409 register: name taken
  kTenantLimit,   // 503 register: max_tenants reached
  kMalformed,     // 400 unparseable frame or tenant name / bad config
};

const char* to_string(Admission a) noexcept;
int http_status(Admission a) noexcept;
inline bool admitted(Admission a) noexcept {
  return a == Admission::kOk || a == Admission::kDegraded;
}

/// What to do when the service as a whole is overloaded (pending jobs or
/// global footprint over quota).
enum class ShedPolicy {
  kRejectNewest,  // bounce incoming batches with kShedding until pressure drops
  kDegradeAll,    // downgrade every exact tenant to sampling, keep accepting
};

class MrcService {
 public:
  struct Config {
    std::size_t max_tenants = 64;
    /// Sum of per-tenant resident footprints that counts as overload.
    /// 0 = unlimited.
    std::uint64_t global_memory_quota_bytes = 0;
    /// Runtime pending-job count that counts as overload. 0 = unlimited.
    std::uint64_t max_pending_jobs = 0;
    ShedPolicy shed = ShedPolicy::kRejectNewest;
    /// Defaults applied to tenants registered without an explicit config
    /// (HTTP registrations may override a whitelisted subset, see route).
    TenantConfig tenant_defaults;
  };

  /// The runtime must outlive the service.
  explicit MrcService(core::PardaRuntime& runtime)
      : MrcService(runtime, Config()) {}
  MrcService(core::PardaRuntime& runtime, Config config);
  ~MrcService();

  MrcService(const MrcService&) = delete;
  MrcService& operator=(const MrcService&) = delete;

  // --- programmatic surface (what the HTTP routes call) ---------------------

  Admission register_tenant(const std::string& name);
  Admission register_tenant(const std::string& name,
                            const TenantConfig& config);

  /// Admits and feeds one batch for `name`. The `now` overload exists so
  /// tests can drive the token bucket deterministically.
  Admission ingest(const std::string& name, std::span<const Addr> refs);
  Admission ingest(const std::string& name, std::span<const Addr> refs,
                   std::chrono::steady_clock::time_point now);

  struct TenantStatus {
    std::string name;
    TenantMode mode = TenantMode::kExact;
    std::uint64_t references = 0;
    std::uint64_t windows = 0;
    std::uint64_t aborts = 0;
    std::uint64_t footprint_bytes = 0;
    double sample_rate = 1.0;
  };
  std::optional<TenantStatus> status(const std::string& name) const;

  /// The tenant's current decayed histogram (snapshot semantics; analyzes
  /// the pending exact window on demand — an abort there returns nullopt
  /// and counts against the tenant's abort quota).
  std::optional<Histogram> histogram(const std::string& name);

  std::vector<std::string> tenant_names() const;
  std::size_t tenant_count() const;
  std::uint64_t global_footprint_bytes() const noexcept {
    return global_footprint_.load(std::memory_order_relaxed);
  }
  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Graceful drain: permanently stops admission, finishes every tenant's
  /// in-flight window (exact analysis or sampler flush), and returns the
  /// final per-tenant histograms. Idempotent; later calls return the same
  /// flushed state.
  std::map<std::string, Histogram> drain();

  // --- HTTP surface ---------------------------------------------------------

  /// Route handler for TelemetryServer::set_handler. Handles:
  ///   POST /tenants/<name>            register (optional JSON config body)
  ///   GET  /tenants                   list tenants + modes
  ///   GET  /tenants/<name>            status JSON
  ///   GET  /tenants/<name>/histogram  parda.histogram.v1
  ///   POST /ingest/<name>             text/plain one address per line, or
  ///                                   application/octet-stream LE u64s
  /// Returns nullopt for everything else (falls through to the telemetry
  /// built-ins). A malformed ingest frame quarantines the tenant.
  std::optional<obs::TelemetryServer::Response> route(
      const obs::TelemetryServer::Request& request);

  /// Installs route() on the runtime's TelemetryServer (which must exist).
  /// The destructor uninstalls it.
  void mount();

 private:
  struct Tenant {
    std::mutex mu;
    TenantSession session;
    // Handles resolved once at registration (registry lookup is the cold
    // path); names carry an embedded {tenant=...} label block that the
    // Prometheus exporter renders as a real label.
    obs::Counter* ingested = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* abort_count = nullptr;
    obs::Counter* shed = nullptr;        // batches bounced by overload
    obs::Counter* degraded = nullptr;    // exact -> sampling transitions
    obs::Counter* quarantined = nullptr; // terminal quarantine events
    obs::Gauge* footprint = nullptr;
    obs::Gauge* mode_gauge = nullptr;
    std::uint64_t reported_footprint = 0;  // last value added to the global

    Tenant(std::string name, core::PardaRuntime& runtime,
           const TenantConfig& config)
        : session(std::move(name), runtime, config) {}
  };

  Tenant* find(const std::string& name) const;
  /// Recomputes the tenant's footprint, updates its gauge and the global
  /// accumulator by delta. Caller holds the tenant's mutex.
  void refresh_footprint(Tenant& t);
  void publish_mode(Tenant& t);
  bool overloaded() const;
  void degrade_all();
  Admission ingest_locked(Tenant& t, std::span<const Addr> refs,
                          std::chrono::steady_clock::time_point now);

  core::PardaRuntime* runtime_;
  Config config_;
  mutable std::mutex mu_;  // guards tenants_ (map shape, not the sessions)
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::atomic<std::uint64_t> global_footprint_{0};
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;
  std::map<std::string, Histogram> drained_;
  bool drained_valid_ = false;
  obs::TelemetryServer* mounted_ = nullptr;
  // Service-level metrics.
  obs::Counter* degraded_total_;     // "tenant.degraded"
  obs::Counter* quarantined_total_;  // "tenant.quarantined"
  obs::Counter* shed_total_;         // "serve.shed"
  obs::Counter* rejected_total_;     // "serve.rejected"
  obs::Gauge* tenants_gauge_;        // "serve.tenants"
};

/// Parses an ingest frame body into addresses. content_type selects the
/// codec: "application/octet-stream" = little-endian u64s (length must be
/// a multiple of 8), anything else = text, one decimal or 0x-hex address
/// per line (blank lines and trailing newline allowed). Returns false on
/// malformed input (the caller quarantines the tenant).
bool parse_frame(std::string_view content_type, std::string_view body,
                 std::vector<Addr>& out);

}  // namespace parda::serve
