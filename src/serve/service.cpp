#include "serve/service.hpp"

#include <charconv>
#include <cstring>

#include "util/check.hpp"
#include "util/json.hpp"

namespace parda::serve {

namespace {

using Request = obs::TelemetryServer::Request;
using Response = obs::TelemetryServer::Response;

/// Tenant names double as metric label values and URL path segments, so
/// the alphabet is restricted to characters safe in both.
bool valid_tenant_name(std::string_view name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

bool parse_addr(std::string_view token, Addr& out) noexcept {
  int base = 10;
  if (token.size() > 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    base = 16;
    token.remove_prefix(2);
  }
  if (token.empty()) return false;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v, base);
  if (ec != std::errc{} || ptr != token.data() + token.size()) return false;
  out = static_cast<Addr>(v);
  return true;
}

Response error_response(Admission a) {
  json::Writer w;
  w.begin_object().key("error").value(to_string(a)).end_object();
  return Response{http_status(a), "application/json", w.take()};
}

void write_status(json::Writer& w, const MrcService::TenantStatus& s) {
  w.begin_object();
  w.key("name").value(s.name);
  w.key("mode").value(to_string(s.mode));
  w.key("references").value(s.references);
  w.key("windows").value(s.windows);
  w.key("aborts").value(s.aborts);
  w.key("footprint_bytes").value(s.footprint_bytes);
  w.key("sample_rate").value(s.sample_rate);
  w.end_object();
}

/// Applies an HTTP registration body onto the service defaults. Only the
/// analysis shape and quotas are client-settable; fault plans are not.
bool parse_tenant_config(std::string_view body, TenantConfig& cfg) {
  if (trim(body).empty()) return true;
  json::Value v;
  try {
    v = json::parse(body);
  } catch (const json::JsonError&) {
    return false;
  }
  if (!v.is_object()) return false;
  try {
    if (const auto* f = v.find("bound")) cfg.bound = f->as_u64();
    if (const auto* f = v.find("window")) cfg.window = f->as_u64();
    if (const auto* f = v.find("decay")) cfg.decay = f->as_double();
    if (const auto* f = v.find("num_procs"))
      cfg.num_procs = static_cast<int>(f->as_i64());
    if (const auto* q = v.find("quotas")) {
      if (!q->is_object()) return false;
      if (const auto* f = q->find("max_refs_per_sec"))
        cfg.quotas.max_refs_per_sec = f->as_u64();
      if (const auto* f = q->find("max_batch_refs"))
        cfg.quotas.max_batch_refs = static_cast<std::size_t>(f->as_u64());
      if (const auto* f = q->find("max_queued_bytes"))
        cfg.quotas.max_queued_bytes = f->as_u64();
      if (const auto* f = q->find("memory_quota_bytes"))
        cfg.quotas.memory_quota_bytes = f->as_u64();
      if (const auto* f = q->find("sampler_tracked"))
        cfg.quotas.sampler_tracked = static_cast<std::size_t>(f->as_u64());
      if (const auto* f = q->find("max_aborts"))
        cfg.quotas.max_aborts = f->as_u64();
    }
  } catch (const json::JsonError&) {
    return false;
  }
  return cfg.bound >= 1 && cfg.window >= 1 && cfg.decay > 0.0 &&
         cfg.decay <= 1.0 && cfg.num_procs >= 1 && cfg.num_procs <= 64 &&
         cfg.quotas.sampler_tracked >= 1;
}

}  // namespace

const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::kOk:
      return "ok";
    case Admission::kDegraded:
      return "degraded";
    case Admission::kRateLimited:
      return "rate_limited";
    case Admission::kQueueFull:
      return "queue_full";
    case Admission::kBatchTooLarge:
      return "batch_too_large";
    case Admission::kQuarantined:
      return "quarantined";
    case Admission::kShedding:
      return "shedding";
    case Admission::kDraining:
      return "draining";
    case Admission::kUnknownTenant:
      return "unknown_tenant";
    case Admission::kAlreadyExists:
      return "already_exists";
    case Admission::kTenantLimit:
      return "tenant_limit";
    case Admission::kMalformed:
      return "malformed";
  }
  return "unknown";
}

int http_status(Admission a) noexcept {
  switch (a) {
    case Admission::kOk:
    case Admission::kDegraded:
      return 200;
    case Admission::kRateLimited:
    case Admission::kQueueFull:
      return 429;
    case Admission::kBatchTooLarge:
      return 413;
    case Admission::kQuarantined:
    case Admission::kAlreadyExists:
      return 409;
    case Admission::kShedding:
    case Admission::kDraining:
    case Admission::kTenantLimit:
      return 503;
    case Admission::kUnknownTenant:
      return 404;
    case Admission::kMalformed:
      return 400;
  }
  return 500;
}

bool parse_frame(std::string_view content_type, std::string_view body,
                 std::vector<Addr>& out) {
  out.clear();
  std::string_view ct = content_type;
  if (const auto semi = ct.find(';'); semi != std::string_view::npos) {
    ct = ct.substr(0, semi);
  }
  ct = trim(ct);
  if (ct == "application/octet-stream") {
    if (body.size() % 8 != 0) return false;
    out.reserve(body.size() / 8);
    for (std::size_t i = 0; i + 8 <= body.size(); i += 8) {
      std::uint64_t v = 0;
      std::memcpy(&v, body.data() + i, 8);  // build targets little-endian
      out.push_back(static_cast<Addr>(v));
    }
    return true;
  }
  // Text: one address per line.
  std::size_t pos = 0;
  while (pos <= body.size()) {
    if (pos == body.size()) break;
    auto nl = body.find('\n', pos);
    if (nl == std::string_view::npos) nl = body.size();
    std::string_view line = body.substr(pos, nl - pos);
    pos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    line = trim(line);
    if (line.empty()) continue;
    Addr a = 0;
    if (!parse_addr(line, a)) return false;
    out.push_back(a);
  }
  return true;
}

MrcService::MrcService(core::PardaRuntime& runtime, Config config)
    : runtime_(&runtime),
      config_(std::move(config)),
      degraded_total_(&obs::registry().counter("tenant.degraded")),
      quarantined_total_(&obs::registry().counter("tenant.quarantined")),
      shed_total_(&obs::registry().counter("serve.shed")),
      rejected_total_(&obs::registry().counter("serve.rejected")),
      tenants_gauge_(&obs::registry().gauge("serve.tenants")) {
  PARDA_CHECK(config_.max_tenants >= 1);
}

MrcService::~MrcService() {
  if (mounted_ != nullptr) mounted_->set_handler({});
}

void MrcService::mount() {
  obs::TelemetryServer* server = runtime_->telemetry();
  PARDA_CHECK(server != nullptr);
  mounted_ = server;
  server->set_handler(
      [this](const Request& request) { return route(request); });
}

Admission MrcService::register_tenant(const std::string& name) {
  return register_tenant(name, config_.tenant_defaults);
}

Admission MrcService::register_tenant(const std::string& name,
                                      const TenantConfig& config) {
  if (!valid_tenant_name(name)) return Admission::kMalformed;
  if (draining()) return Admission::kDraining;
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.contains(name)) return Admission::kAlreadyExists;
  if (tenants_.size() >= config_.max_tenants) return Admission::kTenantLimit;
  auto tenant = std::make_unique<Tenant>(name, *runtime_, config);
  const auto labeled = [&name](std::string_view base) {
    std::string full(base);
    full += "{tenant=";
    full += name;
    full += "}";
    return full;
  };
  auto& reg = obs::registry();
  tenant->ingested = &reg.counter(labeled("serve.ingest_refs"));
  tenant->rejected = &reg.counter(labeled("serve.rejected_batches"));
  tenant->abort_count = &reg.counter(labeled("serve.window_aborts"));
  tenant->shed = &reg.counter(labeled("serve.shed_batches"));
  tenant->degraded = &reg.counter(labeled("serve.degraded"));
  tenant->quarantined = &reg.counter(labeled("serve.quarantined"));
  tenant->footprint = &reg.gauge(labeled("serve.tenant_footprint_bytes"));
  tenant->mode_gauge = &reg.gauge(labeled("serve.tenant_mode"));
  publish_mode(*tenant);
  refresh_footprint(*tenant);
  tenants_.emplace(name, std::move(tenant));
  tenants_gauge_->set(tenants_.size());
  return Admission::kOk;
}

MrcService::Tenant* MrcService::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(name);
  // Tenants are never erased, so the pointer stays valid for the
  // service's lifetime even after the map lock drops.
  return it == tenants_.end() ? nullptr : it->second.get();
}

Admission MrcService::ingest(const std::string& name,
                             std::span<const Addr> refs) {
  return ingest(name, refs, std::chrono::steady_clock::now());
}

Admission MrcService::ingest(const std::string& name,
                             std::span<const Addr> refs,
                             std::chrono::steady_clock::time_point now) {
  if (draining()) {
    rejected_total_->increment();
    return Admission::kDraining;
  }
  Tenant* tenant = find(name);
  if (tenant == nullptr) {
    rejected_total_->increment();
    return Admission::kUnknownTenant;
  }
  if (overloaded()) {
    if (config_.shed == ShedPolicy::kRejectNewest) {
      shed_total_->increment();
      rejected_total_->increment();
      tenant->rejected->increment();
      tenant->shed->increment();
      return Admission::kShedding;
    }
    degrade_all();
  }
  std::lock_guard<std::mutex> lock(tenant->mu);
  return ingest_locked(*tenant, refs, now);
}

Admission MrcService::ingest_locked(
    Tenant& t, std::span<const Addr> refs,
    std::chrono::steady_clock::time_point now) {
  const auto reject = [&](Admission a) {
    t.rejected->increment();
    rejected_total_->increment();
    return a;
  };
  if (t.session.mode() == TenantMode::kQuarantined) {
    return reject(Admission::kQuarantined);
  }
  const TenantQuotas& quotas = t.session.config().quotas;
  if (refs.size() > quotas.max_batch_refs) {
    return reject(Admission::kBatchTooLarge);
  }
  if (quotas.max_queued_bytes != 0) {
    const std::uint64_t queued =
        (t.session.pending_refs() + refs.size()) * sizeof(Addr);
    if (queued > quotas.max_queued_bytes) return reject(Admission::kQueueFull);
  }
  if (!t.session.try_consume(refs.size(), now)) {
    return reject(Admission::kRateLimited);
  }
  try {
    t.session.feed(refs);
  } catch (const std::exception&) {
    // The aborted window's references are gone; the pool has already
    // recycled the poisoned World. Quarantine once the tenant exhausts its
    // abort quota; below it, the tenant keeps serving (the batch WAS
    // admitted — the analysis loss shows in the aborts counter).
    t.abort_count->increment();
    if (t.session.aborts() >= quotas.max_aborts) {
      t.session.quarantine();
      quarantined_total_->increment();
      t.quarantined->increment();
      publish_mode(t);
      refresh_footprint(t);
      return Admission::kQuarantined;
    }
  }
  t.ingested->add(refs.size());
  if (t.session.mode() == TenantMode::kExact &&
      quotas.memory_quota_bytes != 0 &&
      t.session.footprint_bytes() > quotas.memory_quota_bytes) {
    t.session.degrade();
    degraded_total_->increment();
    t.degraded->increment();
    publish_mode(t);
  }
  refresh_footprint(t);
  return t.session.mode() == TenantMode::kDegraded ? Admission::kDegraded
                                                   : Admission::kOk;
}

bool MrcService::overloaded() const {
  if (config_.max_pending_jobs != 0 &&
      runtime_->pending_jobs() >= config_.max_pending_jobs) {
    return true;
  }
  return config_.global_memory_quota_bytes != 0 &&
         global_footprint_bytes() > config_.global_memory_quota_bytes;
}

void MrcService::degrade_all() {
  std::vector<Tenant*> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(tenants_.size());
    for (auto& [name, tenant] : tenants_) all.push_back(tenant.get());
  }
  for (Tenant* tenant : all) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session.mode() != TenantMode::kExact) continue;
    tenant->session.degrade();
    degraded_total_->increment();
    tenant->degraded->increment();
    publish_mode(*tenant);
    refresh_footprint(*tenant);
  }
}

void MrcService::refresh_footprint(Tenant& t) {
  const std::uint64_t now = t.session.footprint_bytes();
  t.footprint->set(now);
  // Unsigned wraparound makes the delta exact for shrinks too.
  global_footprint_.fetch_add(now - t.reported_footprint,
                              std::memory_order_relaxed);
  t.reported_footprint = now;
}

void MrcService::publish_mode(Tenant& t) {
  t.mode_gauge->set(static_cast<std::uint64_t>(t.session.mode()));
}

std::optional<MrcService::TenantStatus> MrcService::status(
    const std::string& name) const {
  Tenant* tenant = find(name);
  if (tenant == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(tenant->mu);
  TenantStatus s;
  s.name = tenant->session.name();
  s.mode = tenant->session.mode();
  s.references = tenant->session.references_seen();
  s.windows = tenant->session.windows_completed();
  s.aborts = tenant->session.aborts();
  s.footprint_bytes = tenant->session.footprint_bytes();
  s.sample_rate = tenant->session.sample_rate();
  return s;
}

std::optional<Histogram> MrcService::histogram(const std::string& name) {
  Tenant* tenant = find(name);
  if (tenant == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(tenant->mu);
  try {
    return tenant->session.snapshot();
  } catch (const std::exception&) {
    // Snapshot analyzes the pending exact window; an abort there counts
    // against the quota like any other aborted window job.
    tenant->abort_count->increment();
    tenant->session.record_abort();
    if (tenant->session.aborts() >= tenant->session.config().quotas.max_aborts) {
      tenant->session.quarantine();
      quarantined_total_->increment();
      tenant->quarantined->increment();
      publish_mode(*tenant);
      refresh_footprint(*tenant);
    }
    return std::nullopt;
  }
}

std::vector<std::string> MrcService::tenant_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

std::size_t MrcService::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

std::map<std::string, Histogram> MrcService::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_valid_) return drained_;
  draining_.store(true, std::memory_order_release);
  std::vector<std::pair<std::string, Tenant*>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(tenants_.size());
    for (auto& [name, tenant] : tenants_) {
      all.emplace_back(name, tenant.get());
    }
  }
  for (auto& [name, tenant] : all) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    try {
      drained_[name] = tenant->session.flush();
    } catch (const std::exception&) {
      // The tenant's final window job aborted during drain: quarantine it
      // and flush the last safe aggregate instead of crashing the drain.
      tenant->abort_count->increment();
      tenant->session.record_abort();
      tenant->session.quarantine();
      quarantined_total_->increment();
      tenant->quarantined->increment();
      publish_mode(*tenant);
      drained_[name] = tenant->session.snapshot();
    }
    refresh_footprint(*tenant);
  }
  drained_valid_ = true;
  return drained_;
}

std::optional<Response> MrcService::route(const Request& request) {
  const std::string& path = request.path;
  if (request.method == "POST" && path.starts_with("/tenants/")) {
    const std::string name = path.substr(9);
    TenantConfig cfg = config_.tenant_defaults;
    if (!parse_tenant_config(request.body, cfg)) {
      return error_response(Admission::kMalformed);
    }
    const Admission a = register_tenant(name, cfg);
    if (!admitted(a)) return error_response(a);
    json::Writer w;
    w.begin_object();
    w.key("status").value("registered");
    w.key("tenant").value(name);
    w.end_object();
    return Response{200, "application/json", w.take()};
  }
  if (request.method == "GET" && (path == "/tenants" || path == "/tenants/")) {
    json::Writer w;
    w.begin_object();
    w.key("schema").value("parda.tenants.v1");
    w.key("draining").value(draining());
    w.key("tenants").begin_array();
    for (const std::string& name : tenant_names()) {
      if (const auto s = status(name)) write_status(w, *s);
    }
    w.end_array();
    w.end_object();
    return Response{200, "application/json", w.take()};
  }
  if (request.method == "GET" && path.starts_with("/tenants/")) {
    std::string rest = path.substr(9);
    const bool want_histogram = rest.ends_with("/histogram");
    if (want_histogram) rest.resize(rest.size() - 10);
    if (want_histogram) {
      if (find(rest) == nullptr) {
        return error_response(Admission::kUnknownTenant);
      }
      const auto hist = histogram(rest);
      if (!hist) return error_response(Admission::kQuarantined);
      return Response{200, "application/json", hist->to_json()};
    }
    const auto s = status(rest);
    if (!s) return error_response(Admission::kUnknownTenant);
    json::Writer w;
    write_status(w, *s);
    return Response{200, "application/json", w.take()};
  }
  if (request.method == "POST" && path.starts_with("/ingest/")) {
    const std::string name = path.substr(8);
    Tenant* tenant = find(name);
    if (tenant == nullptr) return error_response(Admission::kUnknownTenant);
    std::vector<Addr> refs;
    if (!parse_frame(request.content_type, request.body, refs)) {
      // A malformed frame is hostile-client behavior: quarantine, per the
      // isolation contract (TraceFormatError-class failures are terminal).
      std::lock_guard<std::mutex> lock(tenant->mu);
      if (tenant->session.mode() != TenantMode::kQuarantined) {
        tenant->session.quarantine();
        quarantined_total_->increment();
        tenant->quarantined->increment();
        publish_mode(*tenant);
        refresh_footprint(*tenant);
      }
      return error_response(Admission::kMalformed);
    }
    const Admission a = ingest(name, refs);
    if (!admitted(a)) return error_response(a);
    json::Writer w;
    w.begin_object();
    w.key("status").value(to_string(a));
    w.key("accepted").value(static_cast<std::uint64_t>(refs.size()));
    w.end_object();
    return Response{200, "application/json", w.take()};
  }
  return std::nullopt;
}

}  // namespace parda::serve
