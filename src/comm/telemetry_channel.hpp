// The distributed telemetry plane's wire half: clock handshake and frame
// forwarding over the reserved-tag control plane.
//
// In a distributed World (one rank per process) every non-rank-0 process
// periodically snapshots its metrics registry and span ring into a
// parda.telemetry.v1 frame (obs/telemetry.hpp) and posts it to rank 0 on
// detail::kTagTelemetry; rank 0 runs a drainer thread that try_pop-polls
// its mailbox for those frames and ingests them into obs::hub(), so the
// TelemetryServer can serve fleet-wide /metrics, /metrics.json, and
// /spans.
//
// Clock alignment happens once, before the job body runs: each remote
// rank ping/pongs rank 0 on kTagClockPing/kTagClockPong, keeps the
// minimum-RTT sample, and estimates rank 0's tracer epoch offset as the
// classic midpoint m - (t0 + t1)/2 with uncertainty rtt/2. The estimate
// rides inside every frame; the hub rebases remote span timestamps at
// ingest.
//
// The protocol is deliberately symmetric in what it ALWAYS does,
// regardless of obs::enabled(): the handshake runs and the final flush
// frame is sent on every distributed run, so processes with differently
// configured observability can never deadlock each other — only the
// periodic forwarding is gated on enablement. The channel never touches
// Comm or RankStats: frames ride World::route directly, so telemetry
// traffic is invisible to the run's own accounting and the merged
// histograms are bit-identical with telemetry on or off.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "obs/telemetry.hpp"

namespace parda::comm::detail {

class TelemetryChannel {
 public:
  /// Binds to the world's locally hosted rank. The channel is active only
  /// for distributed worlds with np > 1; otherwise every method no-ops.
  TelemetryChannel(World& world, int rank);
  ~TelemetryChannel();

  TelemetryChannel(const TelemetryChannel&) = delete;
  TelemetryChannel& operator=(const TelemetryChannel&) = delete;

  /// Runs the clock handshake before the job body: remote ranks estimate
  /// their offset to rank 0's tracer epoch (kClockSamples min-RTT
  /// ping/pongs), rank 0 serves pongs until every peer reports done.
  /// Bounded by kHandshakeTimeout; on timeout or abort the estimate is
  /// simply marked invalid and the run proceeds.
  void clock_handshake();

  /// The local rank's clock estimate (identity, and never valid, on
  /// rank 0 — rank 0's epoch IS the reference).
  const obs::ClockSync& clock() const noexcept { return clock_; }

  /// Launches the background half: the periodic frame forwarder on remote
  /// ranks (only when obs::enabled()), the ingest drainer on rank 0
  /// (always — finals must be counted even when this process has
  /// observability off).
  void start();

  /// Remote ranks, success path (call after the job body, before the
  /// completion barrier): stops the forwarder and always sends one final
  /// frame so rank 0's drain() can terminate without guessing.
  void flush();

  /// Rank 0, success path (call after the completion barrier): waits —
  /// bounded by kDrainTimeout — until every peer's final frame has been
  /// ingested, then stops the drainer.
  void drain();

  /// Abort path: stops the background thread without any final-frame
  /// protocol (the wire may be poisoned). Idempotent; also run by the
  /// destructor.
  void cancel();

 private:
  static constexpr int kClockSamples = 8;
  static constexpr std::chrono::seconds kHandshakeTimeout{10};
  static constexpr std::chrono::seconds kDrainTimeout{3};

  void handshake_remote();
  void handshake_hub();
  void forwarder_main();
  void drainer_main();
  /// Builds and posts one frame; returns false when the wire is gone.
  bool send_frame(bool final_frame);
  void ingest(const Message& msg);
  void stop_worker();

  World& world_;
  const int rank_;
  const int np_;
  const bool active_;
  const std::chrono::milliseconds interval_;
  obs::ClockSync clock_;
  std::uint64_t seq_ = 0;

  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  int finals_ = 0;                 // rank 0: peers whose final frame landed
  std::vector<bool> final_seen_;   // rank 0: indexed by sender process
};

}  // namespace parda::comm::detail
