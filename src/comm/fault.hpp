// Failure model for the comm runtime (see DESIGN.md "Failure model").
//
// The real Parda runs under MVAPICH, where a failed rank takes the whole
// job down; this runtime reproduces that contract cooperatively. When any
// rank's body throws, the World poisons every mailbox and barrier peer, so
// ranks blocked in recv()/barrier() wake and throw RankAbortedError carrying
// the originating rank and cause — the run unwinds cleanly on all ranks
// instead of deadlocking. Deadlines turn an unexpected wait into a
// DeadlineExceededError; the stall watchdog turns an all-ranks-blocked cycle
// into a per-rank diagnostic dump.
//
// FaultPlan is the deterministic fault-injection companion: a parsed spec
// (env/CLI-configurable) naming exact points — "throw in rank 1 at recv #3",
// "delay rank 0's send #2 by 50ms", "fail the trace producer after 10000
// words" — used by the fault-injection test suite to prove that every
// injected fault produces a clean, attributed error on all ranks.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace parda::comm {

/// Origin value used when the stall watchdog (not a rank) aborts the run.
inline constexpr int kWatchdogOrigin = -1;

/// Thrown by blocked comm operations when another rank aborted the run.
/// origin_rank() names the rank whose failure started the teardown
/// (kWatchdogOrigin when the stall watchdog fired).
class RankAbortedError : public std::runtime_error {
 public:
  RankAbortedError(int origin, const std::string& cause)
      : std::runtime_error(origin == kWatchdogOrigin
                               ? "run aborted by watchdog: " + cause
                               : "run aborted by rank " +
                                     std::to_string(origin) + ": " + cause),
        origin_(origin) {}

  int origin_rank() const noexcept { return origin_; }

 private:
  int origin_;
};

/// Thrown when a recv/barrier deadline expires before the wait completes.
class DeadlineExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown at a FaultPlan-selected injection point.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Operations a FaultPoint can target.
enum class FaultOp : int {
  kSend = 0,
  kRecv = 1,
  kBarrier = 2,
  kProducer = 3,  // the trace producer feeding a TracePipe
};

const char* fault_op_name(FaultOp op) noexcept;

/// One injection point. For comm ops: fire on `rank`'s n-th occurrence of
/// `op` (per-rank, 0-based, counting collective-internal sends/recvs too).
/// For kProducer: fail the trace producer after `after_words` words.
struct FaultPoint {
  int rank = 0;
  FaultOp op = FaultOp::kSend;
  std::uint64_t n = 0;
  enum class Action { kThrow, kDelay } action = Action::kThrow;
  std::uint64_t delay_ms = 0;         // kDelay only
  std::uint64_t after_words = 0;      // kProducer only

  std::string describe() const;
};

/// A deterministic set of injection points.
///
/// Grammar (clauses separated by ';', keys by ','):
///   plan     := clause (';' clause)*
///   clause   := key '=' value (',' key '=' value)*
///   keys     : rank   (int, required for send/recv/barrier)
///              op     (send | recv | barrier | producer)
///              n      (0-based op index on that rank; default 0)
///              action (throw | delay; default throw)
///              ms     (delay milliseconds; required for action=delay)
///              after_words (producer: fail after this many words)
/// Examples:
///   "rank=1,op=recv,n=3"
///   "rank=0,op=send,n=2,action=delay,ms=50;rank=2,op=barrier"
///   "op=producer,after_words=10000"
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the grammar above; throws parda::CheckError on malformed specs.
  static FaultPlan parse(const std::string& spec);

  /// Parses $PARDA_FAULT_PLAN, or returns an empty plan when unset.
  static FaultPlan from_env();

  /// A deterministic pseudo-random single-point plan for seed-matrix
  /// testing: the seed picks a rank in [0, np), an op among
  /// send/recv/barrier, and an op index in [0, max_n). Same seed, same plan.
  static FaultPlan random(std::uint64_t seed, int np, std::uint64_t max_n = 4);

  bool empty() const noexcept { return points_.empty(); }
  const std::vector<FaultPoint>& points() const noexcept { return points_; }

  /// The first point matching rank's n-th op of this kind, else nullptr.
  const FaultPoint* match(int rank, FaultOp op, std::uint64_t n) const noexcept;

  /// Word count after which the trace producer must fail, if any
  /// kProducer point is present.
  std::optional<std::uint64_t> producer_fail_after() const noexcept;

  /// Round-trips through the grammar (parse(describe()) == *this).
  std::string describe() const;

 private:
  std::vector<FaultPoint> points_;
};

}  // namespace parda::comm
