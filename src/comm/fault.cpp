#include "comm/fault.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace parda::comm {

namespace {

// splitmix64: the seed-expansion standard for deterministic test streams.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t parse_u64(const std::string& value, const std::string& clause) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 0);
  PARDA_CHECK_MSG(end != value.c_str() && *end == '\0',
                  "bad number '%s' in fault clause '%s'", value.c_str(),
                  clause.c_str());
  return v;
}

}  // namespace

const char* fault_op_name(FaultOp op) noexcept {
  switch (op) {
    case FaultOp::kSend:
      return "send";
    case FaultOp::kRecv:
      return "recv";
    case FaultOp::kBarrier:
      return "barrier";
    case FaultOp::kProducer:
      return "producer";
  }
  return "?";
}

std::string FaultPoint::describe() const {
  if (op == FaultOp::kProducer) {
    return "op=producer,after_words=" + std::to_string(after_words);
  }
  std::string s = "rank=" + std::to_string(rank) +
                  ",op=" + fault_op_name(op) + ",n=" + std::to_string(n);
  if (action == Action::kDelay) {
    s += ",action=delay,ms=" + std::to_string(delay_ms);
  }
  return s;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;

    FaultPoint pt;
    bool have_rank = false;
    bool have_op = false;
    bool have_ms = false;
    std::size_t cpos = 0;
    while (cpos <= clause.size()) {
      std::size_t comma = clause.find(',', cpos);
      if (comma == std::string::npos) comma = clause.size();
      const std::string kv = clause.substr(cpos, comma - cpos);
      cpos = comma + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      PARDA_CHECK_MSG(eq != std::string::npos,
                      "fault clause '%s' has key without '=value'",
                      clause.c_str());
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "rank") {
        pt.rank = static_cast<int>(parse_u64(value, clause));
        have_rank = true;
      } else if (key == "op") {
        have_op = true;
        if (value == "send") {
          pt.op = FaultOp::kSend;
        } else if (value == "recv") {
          pt.op = FaultOp::kRecv;
        } else if (value == "barrier") {
          pt.op = FaultOp::kBarrier;
        } else if (value == "producer") {
          pt.op = FaultOp::kProducer;
        } else {
          PARDA_CHECK_MSG(false, "unknown op '%s' in fault clause '%s'",
                          value.c_str(), clause.c_str());
        }
      } else if (key == "n") {
        pt.n = parse_u64(value, clause);
      } else if (key == "action") {
        if (value == "throw") {
          pt.action = FaultPoint::Action::kThrow;
        } else if (value == "delay") {
          pt.action = FaultPoint::Action::kDelay;
        } else {
          PARDA_CHECK_MSG(false, "unknown action '%s' in fault clause '%s'",
                          value.c_str(), clause.c_str());
        }
      } else if (key == "ms") {
        pt.delay_ms = parse_u64(value, clause);
        have_ms = true;
      } else if (key == "after_words") {
        pt.after_words = parse_u64(value, clause);
      } else {
        PARDA_CHECK_MSG(false, "unknown key '%s' in fault clause '%s'",
                        key.c_str(), clause.c_str());
      }
    }
    PARDA_CHECK_MSG(have_op, "fault clause '%s' is missing op=",
                    clause.c_str());
    PARDA_CHECK_MSG(pt.op == FaultOp::kProducer || have_rank,
                    "fault clause '%s' is missing rank=", clause.c_str());
    PARDA_CHECK_MSG(pt.action != FaultPoint::Action::kDelay || have_ms,
                    "fault clause '%s' has action=delay without ms=",
                    clause.c_str());
    plan.points_.push_back(pt);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("PARDA_FAULT_PLAN");
  if (spec == nullptr || spec[0] == '\0') return {};
  return parse(spec);
}

FaultPlan FaultPlan::random(std::uint64_t seed, int np, std::uint64_t max_n) {
  PARDA_CHECK_MSG(np >= 1, "np=%d must be positive", np);
  PARDA_CHECK_MSG(max_n >= 1, "max_n must be positive");
  std::uint64_t state = seed;
  FaultPoint pt;
  pt.rank = static_cast<int>(splitmix64(state) %
                             static_cast<std::uint64_t>(np));
  switch (splitmix64(state) % 3) {
    case 0:
      pt.op = FaultOp::kSend;
      break;
    case 1:
      pt.op = FaultOp::kRecv;
      break;
    default:
      pt.op = FaultOp::kBarrier;
      break;
  }
  pt.n = splitmix64(state) % max_n;
  FaultPlan plan;
  plan.points_.push_back(pt);
  return plan;
}

const FaultPoint* FaultPlan::match(int rank, FaultOp op,
                                   std::uint64_t n) const noexcept {
  for (const FaultPoint& pt : points_) {
    if (pt.op == op && pt.rank == rank && pt.n == n) return &pt;
  }
  return nullptr;
}

std::optional<std::uint64_t> FaultPlan::producer_fail_after() const noexcept {
  for (const FaultPoint& pt : points_) {
    if (pt.op == FaultOp::kProducer) return pt.after_words;
  }
  return std::nullopt;
}

std::string FaultPlan::describe() const {
  std::string s;
  for (const FaultPoint& pt : points_) {
    if (!s.empty()) s += ';';
    s += pt.describe();
  }
  return s;
}

}  // namespace parda::comm
