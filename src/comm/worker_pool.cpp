#include "comm/worker_pool.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <utility>

#include "obs/log.hpp"
#include "obs/runtime.hpp"
#include "util/timer.hpp"

namespace parda::comm {

namespace {

/// Pre-resolved handles for the pool's own lifecycle metrics (cold paths:
/// admission, spawn, park/unpark — never inside a rank body).
struct PoolCounters {
  obs::Counter& jobs;
  obs::Counter& worlds_created;
  obs::Counter& world_reuses;
  obs::Counter& workers_spawned;
  obs::TimerHistogram& admission_wait;
  obs::TimerHistogram& park_wait;
  // Job-scoped gauges, re-published at every admission (see DESIGN.md
  // "Live telemetry & attribution"): `last` describes the current/most
  // recent job, `max` the pool's lifetime high-water mark.
  obs::Gauge& job_np;
  obs::Gauge& pool_capacity;
  obs::Gauge& world_generation;
};

PoolCounters& pool_counters() {
  static PoolCounters counters{
      obs::registry().counter("runtime.jobs"),
      obs::registry().counter("runtime.worlds_created"),
      obs::registry().counter("runtime.world_reuses"),
      obs::registry().counter("runtime.workers_spawned"),
      obs::registry().timer("runtime.admission_wait"),
      obs::registry().timer("runtime.park_wait"),
      obs::registry().gauge("runtime.job_np"),
      obs::registry().gauge("runtime.pool_capacity"),
      obs::registry().gauge("runtime.world_generation"),
  };
  return counters;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Two-sample stall detection (moved here from the per-run watchdog thread
/// that comm::run used to spawn): a stall is every rank either exited or
/// parked in the same blocking wait across two consecutive samples — the
/// epoch, bumped on every block entry, pins "same wait" down — with at
/// least one rank actually blocked. A rank that made any progress between
/// samples has a new epoch, so a busy-but-slow job never trips this.
class StallDetector {
 public:
  explicit StallDetector(int np)
      : prev_epoch_(static_cast<std::size_t>(np), 0) {}

  bool sample(detail::World& world) {
    const int np = world.size();
    bool all_stuck = true;
    bool any_blocked = false;
    std::vector<std::uint64_t> epoch(static_cast<std::size_t>(np), 0);
    for (int r = 0; r < np; ++r) {
      const auto& b = world.board(r);
      epoch[static_cast<std::size_t>(r)] =
          b.epoch.load(std::memory_order_relaxed);
      if (b.done.load(std::memory_order_acquire)) continue;
      if (b.op.load(std::memory_order_acquire) == 0 ||
          (have_prev_ && epoch[static_cast<std::size_t>(r)] !=
                             prev_epoch_[static_cast<std::size_t>(r)])) {
        all_stuck = false;
      } else {
        any_blocked = true;
      }
    }
    const bool stalled = have_prev_ && all_stuck && any_blocked;
    prev_epoch_ = std::move(epoch);
    have_prev_ = true;
    return stalled;
  }

 private:
  std::vector<std::uint64_t> prev_epoch_;
  bool have_prev_ = false;
};

/// Runs fn on destruction — keeps the admission ticket moving even when
/// the job (or the pool plumbing) throws.
template <typename Fn>
class Finally {
 public:
  explicit Finally(Fn fn) : fn_(std::move(fn)) {}
  ~Finally() { fn_(); }
  Finally(const Finally&) = delete;
  Finally& operator=(const Finally&) = delete;

 private:
  Fn fn_;
};

/// Rethrow policy shared with the historical comm::run contract: prefer
/// the root cause. Secondary failures are the RankAbortedErrors thrown by
/// ranks the origin's poisoning woke up.
void rethrow_root_cause(const std::vector<std::exception_ptr>& errors) {
  std::exception_ptr first;
  std::exception_ptr first_root;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!first_root) {
      try {
        std::rethrow_exception(e);
      } catch (const RankAbortedError&) {
        // secondary: keep looking for the originating exception
      } catch (...) {
        first_root = e;
      }
    }
  }
  if (first_root) std::rethrow_exception(first_root);
  if (first) std::rethrow_exception(first);
}

}  // namespace

WorkerPool::WorkerPool(int initial_workers) {
  PARDA_CHECK(initial_workers >= 0);
  if (initial_workers > 0) {
    // Constructor runs before any run_job can race; no admission needed.
    ensure_workers(initial_workers);
  }
}

WorkerPool::~WorkerPool() {
  {
    // Drain the admission queue: take a ticket and never release it, so
    // any job admitted before destruction finishes first.
    std::unique_lock lock(admit_mu_);
    const std::uint64_t ticket = next_ticket_++;
    admit_cv_.wait(lock, [&] { return serving_ == ticket; });
  }
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->seq.fetch_add(1, std::memory_order_release);
    w->seq.notify_one();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  {
    std::lock_guard lock(svc_mu_);
    svc_stop_ = true;
  }
  svc_cv_.notify_all();
  if (service_.joinable()) service_.join();
}

RunStats WorkerPool::run_job(int np, const std::function<void(Comm&)>& fn) {
  return run_job(np, fn, RunOptions{});
}

RunStats WorkerPool::run_job(int np, const std::function<void(Comm&)>& fn,
                             const RunOptions& options) {
  PARDA_CHECK_MSG(np >= 1, "run_job needs np >= 1, got %d", np);
  if (options.transport.distributed()) {
    // One rank per process: the body runs inline on the calling thread
    // against a per-call World; there is nothing for the pool to schedule.
    return detail::run_distributed(np, fn, options);
  }

  // --- FIFO admission: one job owns the pool at a time. -------------------
  const bool timed = obs::enabled();
  const auto admit_t0 = std::chrono::steady_clock::now();
  detail::World* world = nullptr;
  {
    std::unique_lock lock(admit_mu_);
    const std::uint64_t ticket = next_ticket_++;
    admit_cv_.wait(lock, [&] { return serving_ == ticket; });
    // Workers and the world cache are touched only by the serving ticket,
    // so this mutation needs no further locking.
    ensure_workers(np);
    world = &acquire_world(np, options.transport);
  }
  if (timed) {
    auto& c = pool_counters();
    c.admission_wait.record_ns(elapsed_ns(admit_t0));
    c.job_np.set(static_cast<std::uint64_t>(np));
    c.pool_capacity.set(
        static_cast<std::uint64_t>(capacity_.load(std::memory_order_acquire)));
    c.world_generation.set(world->generation());
  }
  const Finally release_slot([&] {
    {
      std::lock_guard lock(admit_mu_);
      ++serving_;
    }
    admit_cv_.notify_all();
  });

  // --- Publish the job and wake its rank slots. ---------------------------
  RunStats stats;
  stats.ranks.resize(static_cast<std::size_t>(np));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(np));
  job_.np = np;
  job_.fn = &fn;
  job_.options = &options;
  job_.world = world;
  job_.stats = &stats;
  job_.errors = &errors;
  job_.remaining.store(np, std::memory_order_relaxed);

  const bool watchdog = options.watchdog_interval.count() > 0;
  if (watchdog) watchdog_arm(*world, options.watchdog_interval);
  const Finally disarm([&] {
    if (watchdog) watchdog_disarm();
  });

  WallTimer wall;
  for (int r = 0; r < np; ++r) {
    // The release store publishes every job_ field written above to the
    // worker's matching acquire; each worker has its own slot, so the
    // wakeup is targeted.
    workers_[static_cast<std::size_t>(r)]->seq.fetch_add(
        1, std::memory_order_release);
    workers_[static_cast<std::size_t>(r)]->seq.notify_one();
  }

  // --- Wait for the last participant (futex-style, no mutex). ------------
  for (int left = job_.remaining.load(std::memory_order_acquire); left != 0;
       left = job_.remaining.load(std::memory_order_acquire)) {
    job_.remaining.wait(left, std::memory_order_acquire);
  }
  stats.wall_seconds = wall.seconds();

  jobs_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) pool_counters().jobs.add(1);

  rethrow_root_cause(errors);
  return stats;
}

void WorkerPool::worker_main(Worker& self, int index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t cur = self.seq.load(std::memory_order_acquire);
    if (cur == seen) {
      // Park until this slot is handed a job (or shutdown). The value
      // check makes a missed notify impossible; spurious wakeups re-park.
      const bool timed = obs::enabled();
      const auto park_t0 = std::chrono::steady_clock::now();
      do {
        self.seq.wait(seen, std::memory_order_acquire);
        cur = self.seq.load(std::memory_order_acquire);
      } while (cur == seen);
      if (timed) pool_counters().park_wait.record_ns(elapsed_ns(park_t0));
    }
    seen = cur;
    if (stop_.load(std::memory_order_acquire)) return;

    Job& job = job_;
    {
      // Re-tag this worker's metrics/span shard with its rank for the
      // duration of the job.
      obs::ScopedThreadRank obs_rank(index);
      RankStats& rank_stats =
          job.stats->ranks[static_cast<std::size_t>(index)];
      Comm comm(*job.world, index, rank_stats, job.options->fault_plan,
                job.options->op_timeout);
      ThreadCpuTimer cpu;
      try {
        (*job.fn)(comm);
      } catch (...) {
        (*job.errors)[static_cast<std::size_t>(index)] =
            std::current_exception();
        job.world->abort(index,
                         detail::describe_exception(
                             (*job.errors)[static_cast<std::size_t>(index)]));
      }
      job.world->board(index).done.store(true, std::memory_order_release);
      rank_stats.busy_seconds = cpu.seconds();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      job.remaining.notify_all();  // the submitter is the only waiter
    }
  }
}

void WorkerPool::ensure_workers(int np) {
  while (static_cast<int>(workers_.size()) < np) {
    const int index = static_cast<int>(workers_.size());
    workers_.push_back(std::make_unique<Worker>());
    Worker& ref = *workers_.back();
    ref.thread = std::thread([this, &ref, index] { worker_main(ref, index); });
    capacity_.fetch_add(1, std::memory_order_release);
    if (obs::enabled()) pool_counters().workers_spawned.add(1);
  }
}

detail::World& WorkerPool::acquire_world(int np, const TransportSpec& spec) {
  const std::pair<int, std::string> key(np, spec.signature());
  auto it = worlds_.find(key);
  if (it != worlds_.end()) {
    // Generation bump instead of reallocation: mailbox buckets, barrier
    // peers, rank boards, and the transport's rings/sockets keep their
    // state across jobs.
    it->second->reset();
    world_reuses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) pool_counters().world_reuses.add(1);
    return *it->second;
  }
  auto inserted =
      worlds_.emplace(key, std::make_unique<detail::World>(np, spec));
  worlds_created_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) pool_counters().worlds_created.add(1);
  return *inserted.first->second;
}

void WorkerPool::watchdog_arm(detail::World& world,
                              std::chrono::milliseconds interval) {
  std::lock_guard lock(svc_mu_);
  svc_world_ = &world;
  svc_interval_ = interval;
  if (!service_.joinable()) {
    service_ = std::thread([this] { service_main(); });
  }
  svc_cv_.notify_all();
}

void WorkerPool::watchdog_disarm() {
  std::unique_lock lock(svc_mu_);
  svc_world_ = nullptr;
  svc_cv_.notify_all();
  // A late sample must never poison the next job's (reused) World: wait
  // until the service thread has left its sampling loop.
  svc_cv_.wait(lock, [&] { return !svc_busy_; });
}

void WorkerPool::service_main() {
  std::unique_lock lock(svc_mu_);
  for (;;) {
    svc_cv_.wait(lock, [&] { return svc_stop_ || svc_world_ != nullptr; });
    if (svc_stop_) return;
    svc_busy_ = true;
    detail::World* world = svc_world_;
    StallDetector detector(world->size());
    while (!svc_stop_ && svc_world_ == world && !world->aborted()) {
      svc_cv_.wait_for(lock, svc_interval_);
      if (svc_stop_ || svc_world_ != world || world->aborted()) break;
      if (detector.sample(*world)) {
        const std::string report = world->stall_report();
        obs::log(obs::LogLevel::kWarn, "watchdog.stall")
            .field("np", world->size())
            .field("report", report);
        world->abort(kWatchdogOrigin, report);
        break;
      }
    }
    // Retire the task so the outer wait does not re-enter a finished (e.g.
    // aborted) episode before the job's disarm lands.
    if (svc_world_ == world) svc_world_ = nullptr;
    svc_busy_ = false;
    svc_cv_.notify_all();
  }
}

int WorkerPool::capacity() const noexcept {
  return capacity_.load(std::memory_order_acquire);
}

std::uint64_t WorkerPool::jobs_run() const noexcept {
  return jobs_.load(std::memory_order_relaxed);
}

std::uint64_t WorkerPool::worlds_created() const noexcept {
  return worlds_created_.load(std::memory_order_relaxed);
}

std::uint64_t WorkerPool::world_reuses() const noexcept {
  return world_reuses_.load(std::memory_order_relaxed);
}

bool WorkerPool::watchdog_armed() const noexcept {
  std::lock_guard lock(svc_mu_);
  return svc_world_ != nullptr;
}

}  // namespace parda::comm
