// Persistent executor runtime for the comm layer.
//
// Historically every comm::run(np, fn) spawned np OS threads, built a fresh
// World (mailboxes, barrier peers, rank boards), joined everything at the
// end, and threw it all away — so repeated analyses (bench loops, online
// monitoring windows, many small traces) paid thread-creation and
// allocation churn on every call. WorkerPool extracts the thread lifecycle
// into a reusable runtime:
//
//  - Worker threads are spawned once (growing on demand up to the largest
//    np ever requested) and PARK between jobs on a futex-style
//    std::atomic::wait of their own per-slot sequence counter — no mutex,
//    no spin. Posting a job is one release increment + targeted notify per
//    participating slot, so workers outside the job's np never wake.
//  - Worlds are cached per (np, transport signature) and RESET between
//    jobs (generation bump: mailboxes drained, barrier signals rewound,
//    rank boards and abort state cleared, transport quiesced and
//    restarted) instead of reallocated, so mailbox buckets, barrier
//    structures, shm rings, and socket meshes keep their state across
//    jobs. Distributed transport specs bypass the pool entirely: run_job
//    delegates them to the inline one-rank-per-process runner.
//  - Jobs are admitted through a FIFO ticket queue: any number of threads
//    may call run_job concurrently and the pool time-multiplexes them,
//    one job at a time, in arrival order. Each job re-tags the worker
//    threads with its rank slots via obs::ScopedThreadRank.
//  - The stall watchdog is folded into ONE pool service thread (spawned
//    lazily on the first job that asks for it) instead of one watchdog
//    thread per run.
//
// Failure isolation: an abort (a rank body throwing, a watchdog firing, a
// deadline expiring) fails the JOB — run_job rethrows the root cause
// exactly like comm::run always did — and the pool stays healthy: the
// poisoned World is reset on the next admission and the workers are
// already parked waiting for it.
//
// comm::run(np, fn) remains as a thin back-compat wrapper that builds a
// transient pool, so the one-shot call sites keep their exact semantics.
//
// Observability (enabled like all obs instrumentation): runtime.jobs,
// runtime.worlds_created / runtime.world_reuses, runtime.workers_spawned,
// and the runtime.admission_wait / runtime.park_wait timers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/comm.hpp"

namespace parda::comm {

class WorkerPool {
 public:
  /// Spawns `initial_workers` parked worker threads up front (0 = spawn
  /// lazily on first use). The pool grows to the largest np any job asks
  /// for and never shrinks.
  explicit WorkerPool(int initial_workers = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(comm) on np ranks and blocks until the job completes,
  /// returning the same RunStats as comm::run. Thread-safe: concurrent
  /// callers queue FIFO and time-multiplex the pool. If any rank throws,
  /// the job's World is poisoned and run_job rethrows the root cause after
  /// every participating rank has unwound — the pool itself stays usable.
  RunStats run_job(int np, const std::function<void(Comm&)>& fn);
  RunStats run_job(int np, const std::function<void(Comm&)>& fn,
                   const RunOptions& options);

  /// Worker threads currently alive (monotone; excludes the service
  /// thread).
  int capacity() const noexcept;
  /// Jobs completed over the pool's lifetime (successful or aborted).
  std::uint64_t jobs_run() const noexcept;
  /// Worlds constructed / reused from the per-np cache.
  std::uint64_t worlds_created() const noexcept;
  std::uint64_t world_reuses() const noexcept;
  /// Whether the stall watchdog is armed for a job right now (the
  /// /healthz answer; the service thread itself persists once spawned).
  bool watchdog_armed() const noexcept;

 private:
  /// The job descriptor shared with the workers. Written by the admitted
  /// submitter before the job-sequence bump (release) and read by workers
  /// after observing the bump (acquire); results are read back by the
  /// submitter after `remaining` hits zero.
  struct Job {
    int np = 0;
    const std::function<void(Comm&)>* fn = nullptr;
    const RunOptions* options = nullptr;
    detail::World* world = nullptr;
    RunStats* stats = nullptr;
    std::vector<std::exception_ptr>* errors = nullptr;
    std::atomic<int> remaining{0};
  };

  /// One parked worker. The slot sequence counts jobs this worker has been
  /// handed; bumping it (release) publishes the job_ descriptor to the
  /// worker's matching acquire. Heap-allocated so growth never moves a
  /// slot another thread is waiting on; cache-line aligned so two slots
  /// never share a line.
  struct Worker {
    std::thread thread;
    alignas(64) std::atomic<std::uint64_t> seq{0};
  };

  void worker_main(Worker& self, int index);
  void service_main();
  /// Spawns workers so capacity() >= np. Caller must hold the admission
  /// slot (be the serving ticket).
  void ensure_workers(int np);
  /// Fetches the cached World for (np, transport signature) — reset for
  /// reuse, its transport quiesced/cleared/restarted — or creates one.
  detail::World& acquire_world(int np, const TransportSpec& spec);
  /// Hands the active job's World to the service thread for stall
  /// sampling / retires it after the job. Spawns the thread lazily.
  void watchdog_arm(detail::World& world, std::chrono::milliseconds interval);
  void watchdog_disarm();

  // --- admission (FIFO ticket lock) ---------------------------------------
  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ = 0;

  // --- workers ------------------------------------------------------------
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int> capacity_{0};
  std::atomic<bool> stop_{false};
  Job job_;  // reused across jobs; valid only for the admitted submitter

  // --- world cache --------------------------------------------------------
  // Keyed by (np, transport signature): jobs with different wires never
  // share a World, but repeated jobs on the same wire reuse one (rings,
  // sockets, and pump threads warm up once).
  std::map<std::pair<int, std::string>, std::unique_ptr<detail::World>>
      worlds_;
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> worlds_created_{0};
  std::atomic<std::uint64_t> world_reuses_{0};

  // --- watchdog service thread --------------------------------------------
  mutable std::mutex svc_mu_;
  std::condition_variable svc_cv_;
  std::thread service_;
  detail::World* svc_world_ = nullptr;  // non-null while a task is armed
  std::chrono::milliseconds svc_interval_{0};
  bool svc_busy_ = false;  // service thread is inside a sampling loop
  bool svc_stop_ = false;
};

}  // namespace parda::comm
