// A from-scratch message-passing runtime with MPI semantics, backed by
// threads in one process.
//
// The original Parda runs on MVAPICH over Infiniband; this repository
// substitutes a runtime with the same programming model — ranks, two-sided
// tagged send/recv, barrier, gather/reduce/broadcast collectives — so the
// algorithm code reads like the paper's pseudocode (Send(x, p-1),
// S <- Recv(p+1), reduce_sum(hist)) while running portably on a laptop.
//
// Per-rank CPU-time accounting is built in: every rank's thread measures
// its own CLOCK_THREAD_CPUTIME_ID, so blocked time (waiting in recv or
// barrier) is not charged. On a single-core host this is what makes the
// paper's scaling figures reproducible: simulated parallel time is the
// maximum per-rank busy time, which the bench harnesses report alongside
// wall clock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace parda::comm {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Raw message envelope.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-rank statistics collected by the runtime.
struct RankStats {
  double busy_seconds = 0.0;  // thread CPU time inside the rank function
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Whole-run statistics returned by run().
struct RunStats {
  double wall_seconds = 0.0;
  std::vector<RankStats> ranks;

  /// Lower bound on parallel execution time with one core per rank: the
  /// busiest rank's CPU time.
  double max_busy() const noexcept;
  /// Total CPU work across ranks (what a 1-core schedule must execute).
  double total_busy() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  std::uint64_t total_messages() const noexcept;
};

namespace detail {

/// Inbound queue for one rank. Multiple producers, single consumer.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a message matching (src, tag) is available and removes
  /// it. kAnySource / kAnyTag act as wildcards. Matching among eligible
  /// messages is FIFO by arrival.
  Message pop(int src, int tag);
  bool try_pop(int src, int tag, Message& out);

 private:
  bool match(const Message& m, int src, int tag) const noexcept {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

class World {
 public:
  explicit World(int np);

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  /// Central sense-reversing barrier.
  void barrier();

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace detail

/// The per-rank communicator handle passed to the rank function.
class Comm {
 public:
  Comm(detail::World& world, int rank, RankStats& stats)
      : world_(world), rank_(rank), stats_(stats) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_.size(); }

  /// Sends a contiguous buffer of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(int dest, int tag, std::span<const T> data) {
    PARDA_CHECK(dest >= 0 && dest < size());
    Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.payload.resize(data.size_bytes());
    if (!data.empty())
      std::memcpy(msg.payload.data(), data.data(), data.size_bytes());
    stats_.messages_sent += 1;
    stats_.bytes_sent += msg.payload.size();
    world_.mailbox(dest).push(std::move(msg));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send(dest, tag, std::span<const T>(data));
  }

  /// Blocking receive; returns the payload reinterpreted as a vector<T>.
  /// If actual_src / actual_tag are non-null they receive the matched
  /// envelope fields (useful with wildcards).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv(int src, int tag, int* actual_src = nullptr,
                      int* actual_tag = nullptr) {
    Message msg = world_.mailbox(rank_).pop(src, tag);
    PARDA_CHECK(msg.payload.size() % sizeof(T) == 0);
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty())
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    if (actual_src != nullptr) *actual_src = msg.src;
    if (actual_tag != nullptr) *actual_tag = msg.tag;
    return out;
  }

  void barrier() { world_.barrier(); }

  /// Gathers each rank's buffer at root; returns per-rank buffers at root
  /// (indexed by rank), empty elsewhere.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<std::vector<T>> gather(std::span<const T> mine, int root,
                                     int tag) {
    if (rank_ != root) {
      send(root, tag, mine);
      return {};
    }
    std::vector<std::vector<T>> all(size());
    all[root].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      all[r] = recv<T>(r, tag);
    }
    return all;
  }

  /// Broadcast root's buffer to all ranks; returns the buffer everywhere.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> broadcast(std::vector<T> data, int root, int tag) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send(r, tag, data);
      }
      return data;
    }
    return recv<T>(root, tag);
  }

  /// Scatters per-rank buffers from root: rank r receives pieces[r].
  /// Only root reads `pieces` (it may be empty elsewhere); every rank
  /// returns its own piece.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& pieces,
                          int root, int tag) {
    if (rank_ == root) {
      PARDA_CHECK(static_cast<int>(pieces.size()) == size());
      for (int r = 0; r < size(); ++r) {
        if (r != root) send(r, tag, pieces[static_cast<std::size_t>(r)]);
      }
      return pieces[static_cast<std::size_t>(root)];
    }
    return recv<T>(root, tag);
  }

  /// Gather-to-all: every rank contributes a buffer and receives all of
  /// them (gather at rank 0 + broadcast of the concatenation).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<std::vector<T>> allgather(std::span<const T> mine, int tag) {
    std::vector<std::vector<T>> all = gather(mine, 0, tag);
    // Flatten with a length prefix per rank, broadcast, and re-split.
    std::vector<std::uint64_t> lengths(static_cast<std::size_t>(size()));
    std::vector<T> flat;
    if (rank_ == 0) {
      for (int r = 0; r < size(); ++r) {
        lengths[static_cast<std::size_t>(r)] =
            all[static_cast<std::size_t>(r)].size();
        flat.insert(flat.end(), all[static_cast<std::size_t>(r)].begin(),
                    all[static_cast<std::size_t>(r)].end());
      }
    }
    lengths = broadcast(std::move(lengths), 0, tag);
    flat = broadcast(std::move(flat), 0, tag);
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    std::size_t at = 0;
    for (int r = 0; r < size(); ++r) {
      const auto len =
          static_cast<std::size_t>(lengths[static_cast<std::size_t>(r)]);
      out[static_cast<std::size_t>(r)].assign(flat.begin() + at,
                                              flat.begin() + at + len);
      at += len;
    }
    return out;
  }

  /// Element-wise sum reduction of equal-or-ragged length u64 buffers at
  /// root (ragged buffers are summed up to each buffer's length). Used for
  /// the histogram reduction; returns the sum at root, empty elsewhere.
  std::vector<std::uint64_t> reduce_sum_u64(
      std::span<const std::uint64_t> mine, int root, int tag);

  /// Allreduce: reduce_sum at rank 0 followed by a broadcast; every rank
  /// returns the element-wise sum.
  std::vector<std::uint64_t> allreduce_sum_u64(
      std::span<const std::uint64_t> mine, int tag);

  RankStats& stats() noexcept { return stats_; }

 private:
  detail::World& world_;
  int rank_;
  RankStats& stats_;
};

/// Spawns np threads, invokes fn(comm) on each, joins, and returns run
/// statistics. Any exception thrown by a rank is rethrown (first one wins)
/// after all threads are joined.
RunStats run(int np, const std::function<void(Comm&)>& fn);

}  // namespace parda::comm
