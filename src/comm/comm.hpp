// A from-scratch message-passing runtime with MPI semantics and a
// pluggable transport under it.
//
// The original Parda runs on MVAPICH over Infiniband; this repository
// substitutes a runtime with the same programming model — ranks, two-sided
// tagged send/recv, barrier, gather/reduce/broadcast collectives — so the
// algorithm code reads like the paper's pseudocode (Send(x, p-1),
// S <- Recv(p+1), reduce_sum(hist)) while running portably on a laptop.
//
// The data plane is selected by RunOptions::transport (comm/transport/,
// DESIGN.md "Transports"):
//  - threads (default): ranks are threads of one process and messages move
//    as refcounted payload handles — the zero-copy paths below;
//  - shm: messages serialize through SPSC byte rings in a shared-memory
//    segment, attachable by separate processes;
//  - tcp: messages serialize through a socket mesh, one connection per
//    rank pair, across processes or hosts.
// Matching, ordering, deadlines, abort propagation, and the watchdog are
// transport-invariant: every rank's blocking receive waits on its local
// Mailbox regardless of the wire, so the failure model and the obs layer
// behave identically on all three.
//
// Data movement is zero-copy wherever the API and the transport permit
// (see DESIGN.md section "Data movement in the comm runtime"):
//  - send(dest, tag, std::vector<T>&&) moves the buffer into the message;
//    the matching recv<T> moves it back out, so a point-to-point transfer
//    of an owned vector costs zero byte copies.
//  - Collectives publish ONE refcounted immutable block (a shared buffer)
//    and transport offset/length views of it: broadcast_view / scatterv_view
//    hand every rank a View<T> aliasing the root's block, and the binomial
//    broadcast/gather trees forward payload handles, never bytes.
//  - recv_view<T> reinterprets any payload in place when size and alignment
//    permit, falling back to a single counted copy otherwise.
// RankStats separates bytes_copied (actually memcpy'd) from bytes_shared
// (transferred by handing over ownership or bumping a refcount), so benches
// and tests can prove how many copies a communication pattern performs.
//
// Failure model (see DESIGN.md section "Failure model" and comm/fault.hpp):
// when any rank's body throws, the World poisons every mailbox and barrier
// peer; blocked ranks wake and throw RankAbortedError naming the originating
// rank and cause, so run() unwinds cleanly on all ranks instead of
// deadlocking. recv/barrier accept optional per-op deadlines
// (DeadlineExceededError), a stall watchdog converts an all-ranks-blocked
// cycle into a per-rank diagnostic dump, and a seeded FaultPlan injects
// deterministic failures for the fault-injection test suite.
//
// Per-rank CPU-time accounting is built in: every rank's thread measures
// its own CLOCK_THREAD_CPUTIME_ID, so blocked time (waiting in recv or
// barrier) is not charged. On a single-core host this is what makes the
// paper's scaling figures reproducible: simulated parallel time is the
// maximum per-rank busy time, which the bench harnesses report alongside
// wall clock.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "comm/fault.hpp"
#include "comm/transport/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/check.hpp"

namespace parda::comm {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Transport;

namespace detail {
/// Tags below kReservedTagCeiling are the runtime's own (the message-based
/// barrier of serializing transports, and the telemetry control plane).
/// They are unreachable from user code in practice and excluded from
/// kAnyTag wildcard matching, so internal traffic can share the mailboxes
/// without ever surfacing in a user recv.
inline constexpr int kReservedTagBase = std::numeric_limits<int>::min();
inline constexpr int kReservedTagCeiling = kReservedTagBase + 64;
/// Telemetry control plane (comm/telemetry_channel.hpp): the clock
/// ping/pong handshake at World setup and the metric/span frames each
/// remote process forwards to rank 0. Barrier rounds use base+k for
/// k < ceil(log2(np)) <= 6, so base+32.. is safely clear of them.
inline constexpr int kTagClockPing = kReservedTagBase + 32;
inline constexpr int kTagClockPong = kReservedTagBase + 33;
inline constexpr int kTagTelemetry = kReservedTagBase + 34;
}  // namespace detail

/// Absolute wait limit for one blocking operation; nullopt = wait forever.
using OpDeadline = std::optional<std::chrono::steady_clock::time_point>;
/// Relative per-op timeout as accepted by recv/barrier.
using OpTimeout = std::optional<std::chrono::milliseconds>;

template <typename T>
concept Trivial = std::is_trivially_copyable_v<T>;

/// A type-erased immutable payload. Three provenances:
///  - own():     a moved-in typed vector — zero-copy on send, and zero-copy
///               on recv when the receiver asks for the same element type
///               (the storage is moved back out);
///  - copy_of(): bytes memcpy'd from a caller-owned span (the legacy path);
///  - view():    an offset/length slice of a refcounted shared block — the
///               currency of the zero-copy collectives. The block is
///               immutable once published, so any number of ranks may hold
///               views concurrently; the storage dies with its last holder.
class Payload {
 public:
  Payload() = default;

  template <Trivial T>
  static Payload own(std::vector<T>&& v) {
    Payload p;
    auto holder = std::make_shared<std::vector<T>>(std::move(v));
    p.data_ = reinterpret_cast<const std::byte*>(holder->data());
    p.size_ = holder->size() * sizeof(T);
    p.type_ = &typeid(std::vector<T>);
    p.keepalive_ = std::move(holder);
    return p;
  }

  template <Trivial T>
  static Payload copy_of(std::span<const T> s) {
    std::vector<std::byte> bytes(s.size_bytes());
    if (!s.empty()) std::memcpy(bytes.data(), s.data(), s.size_bytes());
    return own(std::move(bytes));
  }

  /// A view of `size` bytes at `data`, kept alive by `keepalive`. The
  /// storage must never be mutated after publication.
  static Payload view(std::shared_ptr<void> keepalive, const std::byte* data,
                      std::size_t size) {
    Payload p;
    p.keepalive_ = std::move(keepalive);
    p.data_ = data;
    p.size_ = size;
    p.is_view_ = true;
    return p;
  }

  std::span<const std::byte> bytes() const noexcept { return {data_, size_}; }
  std::size_t size_bytes() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// True when this payload travels by refcount (shared block view, or an
  /// owned buffer republished by a collective tree).
  bool is_view() const noexcept { return is_view_; }
  void mark_view() noexcept { is_view_ = true; }

  /// Moves the storage out as vector<T> without copying. Succeeds only if
  /// the payload was created by own(std::vector<T>&&) and nothing else
  /// (another View, an in-flight relay) still references the storage.
  template <Trivial T>
  bool take(std::vector<T>& out) {
    if (type_ == nullptr || *type_ != typeid(std::vector<T>)) return false;
    if (keepalive_.use_count() != 1) return false;
    out = std::move(*static_cast<std::vector<T>*>(keepalive_.get()));
    *this = Payload();
    return true;
  }

  /// Whether bytes() can be reinterpreted as T elements in place.
  template <Trivial T>
  bool aligned_for() const noexcept {
    return size_ % sizeof(T) == 0 &&
           reinterpret_cast<std::uintptr_t>(data_) % alignof(T) == 0;
  }

  std::shared_ptr<void> share() const noexcept { return keepalive_; }

 private:
  std::shared_ptr<void> keepalive_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  const std::type_info* type_ = nullptr;  // set for own()-provenance storage
  bool is_view_ = false;
};

/// A refcount-backed immutable view of a T array, handed out by the
/// zero-copy receive and collective paths. Cheap to copy; the underlying
/// block stays alive while any View (or in-flight message) references it.
template <Trivial T>
class View {
 public:
  View() = default;
  View(std::shared_ptr<void> keepalive, std::span<const T> span)
      : keepalive_(std::move(keepalive)), span_(span) {}

  const T* data() const noexcept { return span_.data(); }
  std::size_t size() const noexcept { return span_.size(); }
  bool empty() const noexcept { return span_.empty(); }
  const T& operator[](std::size_t i) const noexcept { return span_[i]; }
  const T* begin() const noexcept { return span_.data(); }
  const T* end() const noexcept { return span_.data() + span_.size(); }
  std::span<const T> span() const noexcept { return span_; }
  std::vector<T> to_vector() const { return {span_.begin(), span_.end()}; }

 private:
  std::shared_ptr<void> keepalive_;
  std::span<const T> span_;
};

/// Raw message envelope. `origin` is the rank that contributed the payload;
/// it equals `src` for point-to-point traffic and is preserved across the
/// relay hops of the binomial collectives (matching stays on (src, tag)).
struct Message {
  int src = 0;
  int origin = 0;
  int tag = 0;
  Payload payload;
};

/// Per-rank statistics collected by the runtime.
struct RankStats {
  double busy_seconds = 0.0;  // thread CPU time inside the rank function
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;    // payload bytes transmitted, any mode
  std::uint64_t bytes_copied = 0;  // bytes physically memcpy'd (send-side
                                   // span copies + recv-side copy-outs)
  std::uint64_t bytes_shared = 0;  // bytes handed over by moved ownership
                                   // or a refcount bump — never touched
};

/// Whole-run statistics returned by run().
struct RunStats {
  double wall_seconds = 0.0;
  std::vector<RankStats> ranks;

  /// Lower bound on parallel execution time with one core per rank: the
  /// busiest rank's CPU time.
  double max_busy() const noexcept;
  /// Total CPU work across ranks (what a 1-core schedule must execute).
  double total_busy() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_bytes_copied() const noexcept;
  std::uint64_t total_bytes_shared() const noexcept;
};

namespace detail {

/// Inbound queue for one rank. Multiple producers, single consumer.
/// Messages live in per-source buckets so pop(src, tag) scans only the
/// matching source's deque; an arrival sequence number preserves the
/// FIFO-by-arrival contract for wildcard receives. The owning rank is the
/// only waiter, so producers use a targeted notify_one.
class Mailbox {
 public:
  enum class Wait { kOk, kPoisoned, kTimeout };

  explicit Mailbox(int sources);

  void push(Message msg);
  /// Blocks until a message matching (src, tag) is available and removes
  /// it into `out`. kAnySource / kAnyTag act as wildcards. Matching among
  /// eligible messages is FIFO by arrival. Returns kPoisoned once the
  /// mailbox is poisoned (even if matching messages remain queued:
  /// teardown beats draining) and kTimeout when `deadline` passes first.
  Wait pop(int src, int tag, Message& out, const OpDeadline& deadline);
  bool try_pop(int src, int tag, Message& out);

  /// Abort propagation: wakes the blocked owner; all subsequent pops
  /// return kPoisoned.
  void poison();

  /// Reuse: drains every bucket and clears the poison flag. The deque
  /// buckets themselves (and their allocations) survive, so a pooled
  /// World's mailboxes warm up once. Caller must guarantee no rank is
  /// blocked in pop().
  void reset();

  /// Messages queued right now / delivered over the mailbox's lifetime
  /// (watchdog diagnostics).
  std::size_t depth() const;
  std::uint64_t delivered() const;

 private:
  struct Stamped {
    Message msg;
    std::uint64_t seq;  // arrival order across all sources
  };

  static bool tag_matches(const Message& m, int tag) noexcept {
    // Wildcards never match the runtime's reserved internal tags: barrier
    // traffic of serializing transports shares the mailboxes but must stay
    // invisible to user-level recv(kAnySource, kAnyTag).
    if (tag == kAnyTag) return m.tag >= kReservedTagCeiling;
    return m.tag == tag;
  }
  bool take_locked(int src, int tag, Message& out);

  mutable std::mutex mu_;
  std::condition_variable cv_;  // single waiter: the owning rank
  std::vector<std::deque<Stamped>> buckets_;  // indexed by source rank
  std::uint64_t next_seq_ = 0;
  bool poisoned_ = false;
};

class World {
 public:
  /// Threads-transport world (the historical constructor).
  explicit World(int np);
  /// Transport-selected world. `spec` is validated against np; a
  /// distributed spec (spec.local_rank >= 0) builds a world where exactly
  /// one rank is hosted here and the rest are reached over the wire.
  World(int np, const TransportSpec& spec);
  ~World();

  int size() const noexcept { return np_; }
  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }

  const TransportSpec& transport_spec() const noexcept { return spec_; }
  /// True when payload handles cross rank boundaries by refcount (the
  /// threads transport); serializing transports copy on the wire.
  bool zero_copy() const noexcept { return transport_ == nullptr; }

  /// Delivers one stamped message toward dst's mailbox: directly on the
  /// threads transport (and for self-sends on any transport — a rank's
  /// message to itself never touches the wire), through the transport's
  /// serializing path otherwise. May block on wire backpressure; throws
  /// RankAbortedError once the run is aborted mid-wait.
  void route(int src, int dst, Message&& msg);

  /// Barrier with the same contract on every transport: throws
  /// RankAbortedError when the world is poisoned mid-wait and
  /// DeadlineExceededError when `deadline` passes first. The threads
  /// transport uses a dissemination barrier — ceil(log2(np)) pairwise
  /// signalling rounds with targeted notify_one wakeups (each rank only
  /// ever waits on its own condition variable). Serializing transports run
  /// the same dissemination schedule as tagged messages on reserved
  /// internal tags, so the barrier exercises (and is ordered by) the same
  /// wire as data traffic.
  void barrier(int rank, const OpDeadline& deadline = std::nullopt);

  /// First failure wins: records (origin, cause), then poisons every
  /// mailbox and barrier peer so all blocked ranks wake and throw
  /// RankAbortedError, and (distributed worlds) broadcasts an abort
  /// control frame so remote ranks do the same. Idempotent; later calls
  /// are ignored.
  void abort(int origin, const std::string& cause);
  /// Abort on behalf of a remote rank, recorded by a transport pump when
  /// an abort control frame arrives: poisons locally, never re-broadcasts
  /// (the frame's origin already told everyone).
  void abort_remote(int origin, const std::string& cause);
  bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }
  /// Throws RankAbortedError carrying the recorded origin and cause.
  [[noreturn]] void throw_aborted() const;

  /// Watchdog bookkeeping: what each rank is doing right now. Written by
  /// the rank's own thread, read by the watchdog — atomics only.
  struct RankBoard {
    std::atomic<int> op{0};  // 0 = running, else 1 + int(FaultOp)
    std::atomic<int> peer{kAnySource};
    std::atomic<int> tag{kAnyTag};
    std::atomic<std::uint64_t> epoch{0};  // bumped on every block entry
    std::atomic<bool> done{false};        // rank body returned/threw
    // Mirrors of the send-side RankStats that the watchdog may read while
    // the rank is still running (RankStats itself is unsynchronized).
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
  };
  RankBoard& board(int rank) {
    return *boards_[static_cast<std::size_t>(rank)];
  }

  /// Per-rank diagnostic dump for the stall watchdog: blocked op, peer,
  /// tag, queue depths, and bytes moved.
  std::string stall_report();

  /// Returns the World to its just-constructed state for the next job:
  /// mailboxes drained and unpoisoned, barrier signals rewound, rank
  /// boards and abort state cleared — a generation bump, not a
  /// reallocation. The caller (the WorkerPool's admitted submitter) must
  /// guarantee every rank thread of the previous job has unwound.
  void reset();
  /// Jobs this World has been reset for. Serializing transports stamp it
  /// into every frame so leftovers of a previous pooled job are dropped on
  /// receipt, never delivered into the next job.
  std::uint64_t generation() const noexcept { return generation_; }

 private:
  void init(int np);
  void abort_impl(int origin, const std::string& cause, bool broadcast);
  /// The serializing-transport barrier: the dissemination schedule as
  /// tagged messages on reserved internal tags.
  void message_barrier(int rank, const OpDeadline& deadline);
  /// Per-rank barrier mailbox: signals[k] counts round-k notifications
  /// received over the rank's lifetime (cumulative counts make sense
  /// reversal unnecessary: in barrier generation g a rank waits for
  /// signals[k] >= g, and signals only ever grow).
  struct BarrierPeer {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::uint64_t> signals;
    std::uint64_t generation = 0;  // barriers entered by the owner
    bool poisoned = false;
  };

  int np_;
  int rounds_;
  std::uint64_t generation_ = 0;
  TransportSpec spec_;
  std::unique_ptr<Transport> transport_;  // null = threads (direct) path
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<BarrierPeer>> barrier_;
  std::vector<std::unique_ptr<RankBoard>> boards_;

  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  int abort_origin_ = 0;
  std::string abort_cause_;
};

/// RAII registration of a blocking wait on the rank's board.
class BlockedScope {
 public:
  BlockedScope(World::RankBoard& board, FaultOp op, int peer, int tag)
      : board_(board) {
    board_.peer.store(peer, std::memory_order_relaxed);
    board_.tag.store(tag, std::memory_order_relaxed);
    board_.epoch.fetch_add(1, std::memory_order_relaxed);
    board_.op.store(1 + static_cast<int>(op), std::memory_order_release);
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;
  ~BlockedScope() { board_.op.store(0, std::memory_order_release); }

 private:
  World::RankBoard& board_;
};

/// Pre-resolved handles into the global metrics registry for the comm hot
/// paths. Resolved once (mutex-guarded name lookup) on first use; every
/// record after that is a lock-free shard update. The copy/shared split
/// mirrors RankStats, so the snapshot can be cross-checked against the
/// run's own accounting.
struct CommCounters {
  obs::Counter& sends;
  obs::Counter& recvs;
  obs::Counter& barriers;
  obs::Counter& collectives;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_copied;
  obs::Counter& bytes_shared;
  obs::TimerHistogram& mailbox_wait;
  obs::TimerHistogram& barrier_wait;
};
CommCounters& comm_counters();

/// One-line rendering of an exception for abort attribution.
std::string describe_exception(const std::exception_ptr& e);

}  // namespace detail

/// The per-rank communicator handle passed to the rank function.
class Comm {
 public:
  Comm(detail::World& world, int rank, RankStats& stats,
       const FaultPlan* fault_plan = nullptr,
       OpTimeout default_op_timeout = std::nullopt)
      : world_(world),
        rank_(rank),
        stats_(stats),
        board_(world.board(rank)),
        fault_plan_(fault_plan),
        default_op_timeout_(default_op_timeout) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_.size(); }

  // --- Point-to-point contract (identical on every transport) -----------
  //
  // send(dest, tag, buffer) delivers a tagged buffer of trivially
  // copyable elements to rank dest. recv/recv_view at dest match on
  // (src, tag) — kAnySource / kAnyTag act as wildcards — FIFO by arrival
  // among eligible messages, with per-pair ordering guaranteed. Blocking
  // waits honor the per-op timeout (or the run-wide default), throwing
  // DeadlineExceededError on expiry; an abort of the run by any rank
  // throws RankAbortedError. None of that depends on the transport.
  //
  // Only the COST MODEL is transport-dependent, and RankStats records it
  // honestly either way:
  //  - the span / const& overloads always pay one counted copy into the
  //    message;
  //  - the rvalue overload moves the buffer into the message: zero-copy
  //    end to end on the threads transport (bytes_shared), one counted
  //    serialization copy per wire crossing on shm/tcp (bytes_copied);
  //  - recv<T> moves a same-element-type owned payload back out
  //    (zero-copy) and otherwise reinterprets via one counted copy;
  //  - recv_view<T> aliases the payload storage in place when size and
  //    alignment permit, falling back to one counted copy. On serializing
  //    transports the aliased storage is the rank's own deserialized
  //    buffer, so the view is always private to the receiving rank.

  template <Trivial T>
  void send(int dest, int tag, std::span<const T> data) {
    Payload p = Payload::copy_of(data);
    note_copied(p.size_bytes());
    post(dest, tag, std::move(p), rank_);
  }

  template <Trivial T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send(dest, tag, std::span<const T>(data));
  }

  template <Trivial T>
  void send(int dest, int tag, std::vector<T>&& data) {
    Payload p = Payload::own(std::move(data));
    note_transfer(p.size_bytes());
    post(dest, tag, std::move(p), rank_);
  }

  template <Trivial T>
  std::vector<T> recv(int src, int tag, int* actual_src = nullptr,
                      int* actual_tag = nullptr,
                      OpTimeout timeout = std::nullopt) {
    Message msg = pop_checked(src, tag, timeout);
    if (actual_src != nullptr) *actual_src = msg.src;
    if (actual_tag != nullptr) *actual_tag = msg.tag;
    return materialize<T>(std::move(msg.payload));
  }

  template <Trivial T>
  View<T> recv_view(int src, int tag, int* actual_src = nullptr,
                    int* actual_tag = nullptr,
                    OpTimeout timeout = std::nullopt) {
    Message msg = pop_checked(src, tag, timeout);
    if (actual_src != nullptr) *actual_src = msg.src;
    if (actual_tag != nullptr) *actual_tag = msg.tag;
    return as_view<T>(std::move(msg.payload));
  }

  /// Barrier with the same optional deadline semantics as recv.
  void barrier(OpTimeout timeout = std::nullopt) {
    maybe_inject(FaultOp::kBarrier);
    detail::BlockedScope scope(board_, FaultOp::kBarrier, kAnySource,
                               kAnyTag);
    if (obs::enabled()) {
      auto& c = detail::comm_counters();
      c.barriers.add(1);
      // One clock source feeds both the timer histogram and the wait span
      // the attribution report folds into per-rank blocked time.
      obs::SpanTracer& t = obs::tracer();
      const std::int64_t t0 = t.now_ns();
      world_.barrier(rank_, deadline_from(timeout));
      const std::int64_t t1 = t.now_ns();
      c.barrier_wait.record_ns(static_cast<std::uint64_t>(t1 - t0));
      t.record(t0, t1, "barrier-wait", obs::thread_phase());
    } else {
      world_.barrier(rank_, deadline_from(timeout));
    }
  }

  /// Gathers each rank's buffer at root via a log-depth binomial tree;
  /// returns per-rank buffers at root (indexed by rank), empty elsewhere.
  /// Relay hops forward payload handles (no byte copies); with the
  /// rvalue overload the whole gather is zero-copy end to end.
  template <Trivial T>
  std::vector<std::vector<T>> gather(std::vector<T>&& mine, int root,
                                     int tag) {
    note_collective();
    std::vector<Payload> payloads =
        gather_payloads(Payload::own(std::move(mine)), root, tag);
    if (rank_ != root) return {};
    std::vector<std::vector<T>> all;
    all.reserve(payloads.size());
    for (Payload& p : payloads) all.push_back(materialize<T>(std::move(p)));
    return all;
  }

  template <Trivial T>
  std::vector<std::vector<T>> gather(std::span<const T> mine, int root,
                                     int tag) {
    std::vector<T> owned(mine.begin(), mine.end());
    note_copied(mine.size_bytes());
    return gather(std::move(owned), root, tag);
  }

  /// Broadcast root's buffer to all ranks; returns the buffer everywhere.
  /// Transport is a log-depth binomial tree forwarding ONE shared payload
  /// (refcount bumps, no byte copies); each rank pays a single copy-out to
  /// materialize its owned result. Use broadcast_view to avoid even that.
  template <Trivial T>
  std::vector<T> broadcast(std::vector<T> data, int root, int tag) {
    if (size() == 1) return data;
    note_collective();
    Payload p;
    if (rank_ == root) p = Payload::own(std::move(data));
    p = bcast_payload(std::move(p), root, tag);
    return materialize<T>(std::move(p));
  }

  /// Zero-copy broadcast: root publishes its buffer as a shared block and
  /// every rank (root included) receives an immutable View of that single
  /// block — no byte is copied anywhere on the threads transport. On
  /// serializing transports this degrades gracefully: the block crosses
  /// the wire once per tree edge and each rank's View aliases its own
  /// private deserialized copy; same values, counted copies.
  template <Trivial T>
  View<T> broadcast_view(std::vector<T>&& data, int root, int tag) {
    note_collective();
    Payload p;
    if (rank_ == root) p = Payload::own(std::move(data));
    p = bcast_payload(std::move(p), root, tag);
    return as_view<T>(std::move(p));
  }

  /// Scatters per-rank buffers from root: rank r receives pieces[r].
  /// Only root reads `pieces` (it may be empty elsewhere); every rank
  /// returns its own piece. The rvalue overload moves each piece into its
  /// message (zero-copy); the const& overload copies.
  template <Trivial T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& pieces,
                          int root, int tag) {
    note_collective();
    if (rank_ == root) {
      PARDA_CHECK_MSG(static_cast<int>(pieces.size()) == size(),
                      "scatterv at root got %zu pieces for %d ranks",
                      pieces.size(), size());
      for (int r = 0; r < size(); ++r) {
        if (r != root) send(r, tag, pieces[static_cast<std::size_t>(r)]);
      }
      return pieces[static_cast<std::size_t>(rank_)];
    }
    return recv<T>(root, tag);
  }

  template <Trivial T>
  std::vector<T> scatterv(std::vector<std::vector<T>>&& pieces, int root,
                          int tag) {
    note_collective();
    if (rank_ == root) {
      PARDA_CHECK_MSG(static_cast<int>(pieces.size()) == size(),
                      "scatterv at root got %zu pieces for %d ranks",
                      pieces.size(), size());
      for (int r = 0; r < size(); ++r) {
        if (r != root)
          send(r, tag, std::move(pieces[static_cast<std::size_t>(r)]));
      }
      return std::move(pieces[static_cast<std::size_t>(rank_)]);
    }
    return recv<T>(root, tag);
  }

  /// The zero-copy scatter: root publishes ONE shared block and each rank
  /// receives an (offset, count) View of it — on the threads transport the
  /// block is copied zero times regardless of np. slices[r] = (first
  /// element, element count) of rank r's slice; only root reads
  /// block/slices. Slices may overlap. On serializing transports each
  /// rank's slice crosses the wire as one counted copy and the returned
  /// View aliases the rank's private buffer — same contract, copy cost.
  template <Trivial T>
  View<T> scatterv_view(
      std::vector<T>&& block,
      std::span<const std::pair<std::uint64_t, std::uint64_t>> slices,
      int root, int tag) {
    note_collective();
    if (rank_ != root) return recv_view<T>(root, tag);
    PARDA_CHECK_MSG(static_cast<int>(slices.size()) == size(),
                    "scatterv_view at root got %zu slices for %d ranks",
                    slices.size(), size());
    auto holder = std::make_shared<std::vector<T>>(std::move(block));
    const T* base = holder->data();
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const auto [off, cnt] = slices[static_cast<std::size_t>(r)];
      PARDA_CHECK_MSG(off + cnt <= holder->size(),
                      "slice [%llu,+%llu) for rank %d exceeds block of %zu",
                      static_cast<unsigned long long>(off),
                      static_cast<unsigned long long>(cnt), r,
                      holder->size());
      Payload p = Payload::view(
          holder, reinterpret_cast<const std::byte*>(base + off),
          static_cast<std::size_t>(cnt) * sizeof(T));
      note_transfer(p.size_bytes());
      post(r, tag, std::move(p), rank_);
    }
    const auto [off, cnt] = slices[static_cast<std::size_t>(rank_)];
    return View<T>(std::move(holder),
                   std::span<const T>(base + off, static_cast<std::size_t>(cnt)));
  }

  /// Gather-to-all: every rank contributes a buffer and receives all of
  /// them. Contributions ride a zero-copy binomial gather to rank 0 and
  /// are re-broadcast as shared views — the flattened round trip of the
  /// naive gather+broadcast formulation (and its O(np) copies of the
  /// concatenated buffer) is gone; each rank pays one copy-out per piece.
  template <Trivial T>
  std::vector<std::vector<T>> allgather(std::span<const T> mine, int tag) {
    note_collective();
    const int np = size();
    std::vector<T> owned(mine.begin(), mine.end());
    note_copied(mine.size_bytes());
    std::vector<Payload> at_root =
        gather_payloads(Payload::own(std::move(owned)), 0, tag);
    std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      Payload p;
      if (rank_ == 0) p = std::move(at_root[static_cast<std::size_t>(r)]);
      p = bcast_payload(std::move(p), 0, tag);
      out[static_cast<std::size_t>(r)] = materialize<T>(std::move(p));
    }
    return out;
  }

  /// Element-wise sum reduction of equal-or-ragged length u64 buffers at
  /// root (ragged buffers are summed up to each buffer's length). Used for
  /// the histogram reduction; returns the sum at root, empty elsewhere.
  std::vector<std::uint64_t> reduce_sum_u64(
      std::span<const std::uint64_t> mine, int root, int tag);

  /// Allreduce: reduce_sum at rank 0 followed by a broadcast; every rank
  /// returns the element-wise sum.
  std::vector<std::uint64_t> allreduce_sum_u64(
      std::span<const std::uint64_t> mine, int tag);

  RankStats& stats() noexcept { return stats_; }

 private:
  /// Byte-movement accounting: every copied/shared byte updates this
  /// rank's RankStats and, when observability is on, the global per-rank
  /// counters — one choke point per movement class instead of scattered
  /// `stats_.x +=` sites.
  void note_copied(std::size_t n) noexcept {
    stats_.bytes_copied += n;
    if (obs::enabled()) detail::comm_counters().bytes_copied.add(n);
  }
  void note_shared(std::size_t n) noexcept {
    stats_.bytes_shared += n;
    if (obs::enabled()) detail::comm_counters().bytes_shared.add(n);
  }
  /// Accounting for handing over a payload handle (moved buffer, refcount
  /// bump). On the zero-copy transport that is a genuine share; on
  /// serializing transports the bytes will be counted as the wire copy in
  /// post() instead, so nothing is recorded here.
  void note_transfer(std::size_t n) noexcept {
    if (world_.zero_copy()) note_shared(n);
  }
  /// One count per public collective entry (the binomial hops inside are
  /// already visible as sends/recvs).
  void note_collective() noexcept {
    if (obs::enabled()) detail::comm_counters().collectives.add(1);
  }

  /// Converts a per-call timeout (or the run-wide default) into an
  /// absolute deadline for one blocking wait.
  OpDeadline deadline_from(const OpTimeout& timeout) const {
    const OpTimeout& t = timeout.has_value() ? timeout : default_op_timeout_;
    if (!t.has_value()) return std::nullopt;
    return std::chrono::steady_clock::now() + *t;
  }

  /// Fault-injection hook: consults the plan for this rank's n-th op of
  /// this kind. Throws FaultInjectedError or sleeps per the matched point.
  void maybe_inject(FaultOp op) {
    if (fault_plan_ == nullptr) return;
    const std::uint64_t n = op_counts_[static_cast<std::size_t>(op)]++;
    const FaultPoint* pt = fault_plan_->match(rank_, op, n);
    if (pt != nullptr) apply_fault(*pt);
  }
  void apply_fault(const FaultPoint& pt);

  /// The one blocking pop: registers the wait on the rank board for the
  /// watchdog, applies the deadline, and converts poisoning/timeout into
  /// typed exceptions. All receive paths (point-to-point and collective
  /// hops) come through here.
  Message pop_checked(int src, int tag, OpTimeout timeout = std::nullopt) {
    maybe_inject(FaultOp::kRecv);
    detail::BlockedScope scope(board_, FaultOp::kRecv, src, tag);
    Message out;
    detail::Mailbox::Wait wait;
    if (obs::enabled()) {
      auto& c = detail::comm_counters();
      c.recvs.add(1);
      obs::SpanTracer& t = obs::tracer();
      const std::int64_t t0 = t.now_ns();
      wait = world_.mailbox(rank_).pop(src, tag, out, deadline_from(timeout));
      const std::int64_t t1 = t.now_ns();
      c.mailbox_wait.record_ns(static_cast<std::uint64_t>(t1 - t0));
      t.record(t0, t1, "recv-wait", obs::thread_phase());
    } else {
      wait = world_.mailbox(rank_).pop(src, tag, out, deadline_from(timeout));
    }
    switch (wait) {
      case detail::Mailbox::Wait::kOk:
        return out;
      case detail::Mailbox::Wait::kPoisoned:
        world_.throw_aborted();
      case detail::Mailbox::Wait::kTimeout:
      default:
        throw DeadlineExceededError(
            "recv deadline exceeded at rank " + std::to_string(rank_) +
            " (src=" + std::to_string(src) + ", tag=" + std::to_string(tag) +
            ")");
    }
  }

  /// Stamps the envelope and routes it toward dest's mailbox through the
  /// world's transport. On serializing transports a cross-rank post is the
  /// one place the wire copy is counted.
  void post(int dest, int tag, Payload p, int origin) {
    PARDA_CHECK_MSG(dest >= 0 && dest < size(),
                    "send from rank %d to invalid rank %d (np=%d)", rank_,
                    dest, size());
    maybe_inject(FaultOp::kSend);
    stats_.messages_sent += 1;
    stats_.bytes_sent += p.size_bytes();
    board_.messages_sent.fetch_add(1, std::memory_order_relaxed);
    board_.bytes_sent.fetch_add(p.size_bytes(), std::memory_order_relaxed);
    if (obs::enabled()) {
      auto& c = detail::comm_counters();
      c.sends.add(1);
      c.bytes_sent.add(p.size_bytes());
    }
    if (!world_.zero_copy() && dest != rank_) note_copied(p.size_bytes());
    Message msg;
    msg.src = rank_;
    msg.origin = origin;
    msg.tag = tag;
    msg.payload = std::move(p);
    world_.route(rank_, dest, std::move(msg));
  }

  /// Relays an in-flight payload handle (collective hop): a refcount bump
  /// on the zero-copy transport, a wire copy otherwise.
  void forward(int dest, int tag, Payload p, int origin) {
    note_transfer(p.size_bytes());
    post(dest, tag, std::move(p), origin);
  }

  template <Trivial T>
  std::vector<T> materialize(Payload p) {
    std::vector<T> out;
    if (p.take(out)) return out;
    const std::span<const std::byte> b = p.bytes();
    PARDA_CHECK_MSG(b.size() % sizeof(T) == 0,
                    "payload of %zu bytes is not a whole number of %zu-byte "
                    "elements",
                    b.size(), sizeof(T));
    out.resize(b.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), b.data(), b.size());
    note_copied(b.size());
    return out;
  }

  template <Trivial T>
  View<T> as_view(Payload p) {
    if (p.template aligned_for<T>()) {
      const std::span<const std::byte> b = p.bytes();
      return View<T>(p.share(),
                     std::span<const T>(reinterpret_cast<const T*>(b.data()),
                                        b.size() / sizeof(T)));
    }
    // Misaligned or ragged payload: one counted copy, then self-owned view.
    std::vector<T> fixed = materialize<T>(std::move(p));
    auto holder = std::make_shared<std::vector<T>>(std::move(fixed));
    const std::span<const T> s(holder->data(), holder->size());
    return View<T>(std::move(holder), s);
  }

  /// Binomial-tree broadcast of an opaque payload in virtual rank space
  /// (root at virtual 0). The payload travels by refcount — log-depth and
  /// zero byte copies. Returns the payload at every rank.
  Payload bcast_payload(Payload mine, int root, int tag) {
    const int np = size();
    if (np == 1) return mine;
    const int me = (rank_ - root + np) % np;
    Payload p = std::move(mine);
    if (me != 0) {
      const int parent = me - (me & -me);  // clear lowest set bit
      Message msg = pop_checked((parent + root) % np, tag);
      p = std::move(msg.payload);
    } else {
      p.mark_view();  // transported by refcount from here on
    }
    unsigned start;
    if (me == 0) {
      start = std::bit_floor(static_cast<unsigned>(np - 1));
    } else {
      start = static_cast<unsigned>(me & -me) >> 1;
    }
    for (unsigned step = start; step >= 1; step >>= 1) {
      const int child = me + static_cast<int>(step);
      if (child < np) forward((child + root) % np, tag, p, root);
    }
    return p;
  }

  /// Binomial-tree gather of opaque payloads: at root, returns np payloads
  /// indexed by contributing physical rank; empty elsewhere. Relay hops
  /// move handles (origin preserved in the envelope), never bytes.
  std::vector<Payload> gather_payloads(Payload mine, int root, int tag) {
    const int np = size();
    const int me = (rank_ - root + np) % np;
    std::vector<std::pair<int, Payload>> collected;
    collected.emplace_back(rank_, std::move(mine));
    for (int step = 1; step < np; step <<= 1) {
      if ((me & step) != 0) {
        const int parent = ((me - step) + root) % np;
        for (auto& [origin, p] : collected) {
          forward(parent, tag, std::move(p), origin);
        }
        return {};
      }
      if (me + step < np) {
        const int child_virt = me + step;
        const int child_phys = (child_virt + root) % np;
        // The child's binomial subtree spans virtual ranks
        // [child_virt, child_virt + step), clipped to np.
        const int subtree = std::min(step, np - child_virt);
        for (int i = 0; i < subtree; ++i) {
          Message msg = pop_checked(child_phys, tag);
          collected.emplace_back(msg.origin, std::move(msg.payload));
        }
      }
    }
    std::vector<Payload> all(static_cast<std::size_t>(np));
    for (auto& [origin, p] : collected) {
      all[static_cast<std::size_t>(origin)] = std::move(p);
    }
    return all;
  }

  detail::World& world_;
  int rank_;
  RankStats& stats_;
  detail::World::RankBoard& board_;
  const FaultPlan* fault_plan_;
  OpTimeout default_op_timeout_;
  std::uint64_t op_counts_[3] = {0, 0, 0};  // send, recv, barrier
};

/// Runtime knobs for run(); the default reproduces the historical
/// behavior: threads transport, wait-forever, no injection, no watchdog.
struct RunOptions {
  /// Data plane selection (comm/transport/spec.hpp). The default threads
  /// spec is the historical zero-copy in-process wire; shm/tcp serialize
  /// messages through a shared-memory segment or a socket mesh, and a
  /// distributed spec (local_rank >= 0) hosts exactly one rank in this
  /// process — see run() below.
  TransportSpec transport;
  /// Default per-op deadline applied to every blocking recv/barrier (each
  /// call may override). Expiry throws DeadlineExceededError in that rank,
  /// which aborts the run for everyone.
  OpTimeout op_timeout;
  /// Stall watchdog sampling interval; zero disables. When every rank sits
  /// blocked with no progress across two consecutive samples, the watchdog
  /// dumps a per-rank diagnostic to stderr and aborts the run. The
  /// watchdog needs every rank's board in this process, so it is
  /// incompatible with a distributed transport spec (run() rejects the
  /// combination).
  std::chrono::milliseconds watchdog_interval{0};
  /// Deterministic fault injection; not owned, may be null. Must outlive
  /// the run() call.
  const FaultPlan* fault_plan = nullptr;
};

namespace detail {
/// One-process-per-rank execution: runs options.transport.local_rank's
/// body inline on the calling thread against a distributed World. Called
/// by run()/WorkerPool::run_job when the spec is distributed; the returned
/// RunStats carries real numbers only for the local rank.
RunStats run_distributed(int np, const std::function<void(Comm&)>& fn,
                         const RunOptions& options);
}  // namespace detail

/// Runs fn(comm) on np ranks and returns run statistics. If any rank
/// throws, the world is poisoned: every other rank blocked in recv/barrier
/// wakes with RankAbortedError attributing the failure to the originating
/// rank, and run() rethrows the origin's exception after all ranks have
/// unwound. The contract holds on every transport; with a distributed spec
/// (options.transport.local_rank >= 0) this process hosts exactly ONE
/// rank — fn runs inline on the calling thread, the other ranks are
/// sibling processes reached over the wire, and aborts cross as control
/// frames.
///
/// Back-compat wrapper: each in-process call builds a transient WorkerPool
/// (see comm/worker_pool.hpp), so one-shot call sites keep the historical
/// spawn/join semantics. Code that runs many jobs should hold a WorkerPool
/// (or a core PardaRuntime) and reuse it.
RunStats run(int np, const std::function<void(Comm&)>& fn);
RunStats run(int np, const std::function<void(Comm&)>& fn,
             const RunOptions& options);

}  // namespace parda::comm
