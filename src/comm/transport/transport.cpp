#include "comm/transport/transport.hpp"

#include "comm/comm.hpp"
#include "util/check.hpp"

namespace parda::comm {

void Transport::broadcast_abort(int origin, const std::string& cause) {
  (void)origin;
  (void)cause;
}

void Transport::clear(bool aborted) { (void)aborted; }

std::unique_ptr<Transport> make_transport(const TransportSpec& spec,
                                          detail::World& world, int np) {
  switch (spec.kind) {
    case TransportKind::kThreads:
      return nullptr;  // the World's direct mailbox path
    case TransportKind::kShm:
      return transport::make_shm_transport(spec, world, np);
    case TransportKind::kTcp:
      return transport::make_tcp_transport(spec, world, np);
  }
  PARDA_CHECK_MSG(false, "unknown transport kind %d",
                  static_cast<int>(spec.kind));
  return nullptr;
}

}  // namespace parda::comm
