// comm::Transport — the pluggable data plane under Comm's send/recv/
// collective surface (DESIGN.md "Transports").
//
// The split of responsibilities that keeps the fault-tolerance and obs
// layers transport-agnostic:
//   - MATCHING stays local: every rank's blocking receive waits on its own
//     in-process Mailbox, whatever the wire. Poisoning, per-op deadlines,
//     the stall watchdog's rank boards, and FIFO/wildcard matching are
//     therefore identical across transports.
//   - MOVEMENT is the transport's job: post() carries one enveloped
//     payload from src to dst, delivering into dst's Mailbox — directly
//     (threads: the payload handle moves by refcount, zero-copy) or by
//     serializing frames through a ring/socket and having a pump thread
//     rematerialize them on the consumer side.
//   - ABORT propagation crosses processes as a control frame
//     (broadcast_abort); within a process it stays the existing mailbox
//     poisoning.
//
// Lifecycle: a World owns one Transport for its lifetime. start()/stop()
// bracket the pump threads; clear() runs between pooled jobs with the
// pumps stopped, dropping any undelivered bytes (an aborted job may leave
// partial frames; clear(aborted=true) must restore stream sync).
#pragma once

#include <memory>
#include <string>

#include "comm/transport/spec.hpp"

namespace parda::comm {

struct Message;

namespace detail {
class World;
}

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const noexcept = 0;

  /// True when payload handles cross rank boundaries by refcount — the
  /// zero-copy moved-vector sends and shared-block collective views of the
  /// threads transport. Serializing transports return false, and Comm
  /// degrades those paths to counted copies.
  virtual bool zero_copy() const noexcept { return false; }

  /// Moves one message toward dst's mailbox. Called from rank src's
  /// thread; may block on backpressure (full ring / full send queue), and
  /// must bail by throwing the world's abort once the run is aborted.
  virtual void post(int src, int dst, Message&& msg) = 0;

  /// Distributed worlds: push an abort control frame to every remote rank
  /// so their pumps poison their local mailboxes. In-process worlds have
  /// no remotes; the default no-op is correct.
  virtual void broadcast_abort(int origin, const std::string& cause);

  /// Starts/stops the transport's pump threads. stop() joins; after it
  /// returns the transport touches no World state.
  virtual void start() {}
  virtual void stop() {}

  /// Pooled reuse, called between jobs with pumps stopped: drop every
  /// undelivered byte and restore stream sync. `aborted` marks that the
  /// previous job may have abandoned writes mid-frame.
  virtual void clear(bool aborted);
};

/// Builds the transport for `spec` (already validated against np). Returns
/// nullptr for the threads kind: the World's direct mailbox path IS that
/// transport, and keeping it null keeps the default wire free of virtual
/// dispatch.
std::unique_ptr<Transport> make_transport(const TransportSpec& spec,
                                          detail::World& world, int np);

namespace transport {
// Concrete factories (implementation detail of make_transport; exposed
// for the transport unit tests).
std::unique_ptr<Transport> make_shm_transport(const TransportSpec& spec,
                                              detail::World& world, int np);
std::unique_ptr<Transport> make_tcp_transport(const TransportSpec& spec,
                                              detail::World& world, int np);
}  // namespace transport

}  // namespace parda::comm
