#include "comm/transport/spec.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace parda::comm {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::size_t parse_bytes(const std::string& key, const std::string& value) {
  PARDA_CHECK_MSG(!value.empty(), "transport spec: %s needs a value",
                  key.c_str());
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  std::size_t scale = 1;
  if (end != nullptr && *end != '\0') {
    const std::string suffix(end);
    if (suffix == "k" || suffix == "K") {
      scale = 1024;
    } else if (suffix == "m" || suffix == "M") {
      scale = 1024 * 1024;
    } else {
      PARDA_CHECK_MSG(false, "transport spec: bad %s value '%s'", key.c_str(),
                      value.c_str());
    }
  }
  PARDA_CHECK_MSG(n > 0, "transport spec: %s must be positive", key.c_str());
  return static_cast<std::size_t>(n) * scale;
}

}  // namespace

const char* transport_kind_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kThreads: return "threads";
    case TransportKind::kShm: return "shm";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

TransportSpec TransportSpec::parse(const std::string& text) {
  TransportSpec spec;
  const std::size_t colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  if (kind == "threads") {
    spec.kind = TransportKind::kThreads;
  } else if (kind == "shm") {
    spec.kind = TransportKind::kShm;
  } else if (kind == "tcp") {
    spec.kind = TransportKind::kTcp;
  } else {
    PARDA_CHECK_MSG(false,
                    "bad transport '%s' (expected threads|shm|tcp)",
                    kind.c_str());
  }
  if (colon == std::string::npos) return spec;
  for (const std::string& clause : split(text.substr(colon + 1), ',')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    PARDA_CHECK_MSG(eq != std::string::npos,
                    "transport spec: clause '%s' is not key=value",
                    clause.c_str());
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "ring" && spec.kind == TransportKind::kShm) {
      spec.ring_bytes = parse_bytes(key, value);
    } else if (key == "segment" && spec.kind == TransportKind::kShm) {
      spec.segment = value;
    } else if (key == "peers" && spec.kind == TransportKind::kTcp) {
      spec.peers = split(value, '+');
    } else if (key == "sendq" && spec.kind == TransportKind::kTcp) {
      spec.sendq_bytes = parse_bytes(key, value);
    } else if (key == "rank") {
      char* end = nullptr;
      const long r = std::strtol(value.c_str(), &end, 10);
      PARDA_CHECK_MSG(end != nullptr && *end == '\0' && r >= 0,
                      "transport spec: bad rank '%s'", value.c_str());
      spec.local_rank = static_cast<int>(r);
    } else {
      PARDA_CHECK_MSG(false, "transport spec: unknown key '%s' for %s",
                      key.c_str(), transport_kind_name(spec.kind));
    }
  }
  return spec;
}

std::string TransportSpec::describe() const {
  std::string out = transport_kind_name(kind);
  std::string params;
  const auto add = [&params](const std::string& clause) {
    if (!params.empty()) params += ',';
    params += clause;
  };
  const TransportSpec defaults;
  if (kind == TransportKind::kShm) {
    if (ring_bytes != defaults.ring_bytes) {
      add("ring=" + std::to_string(ring_bytes));
    }
    if (!segment.empty()) add("segment=" + segment);
  }
  if (kind == TransportKind::kTcp) {
    if (!peers.empty()) {
      std::string list;
      for (const std::string& p : peers) {
        if (!list.empty()) list += '+';
        list += p;
      }
      add("peers=" + list);
    }
    if (sendq_bytes != defaults.sendq_bytes) {
      add("sendq=" + std::to_string(sendq_bytes));
    }
  }
  if (local_rank != kAllRanksLocal) {
    add("rank=" + std::to_string(local_rank));
  }
  if (params.empty()) return out;
  return out + ":" + params;
}

std::string TransportSpec::signature() const {
  // Endpoint noise (ephemeral ports, segment names) is deliberately
  // excluded: two specs that produce equivalent wires share an identity.
  std::string out = transport_kind_name(kind);
  if (kind == TransportKind::kShm) {
    out += ":ring=" + std::to_string(ring_bytes);
  }
  if (kind == TransportKind::kTcp) {
    out += ":sendq=" + std::to_string(sendq_bytes);
  }
  return out;
}

void TransportSpec::validate(int np) const {
  PARDA_CHECK_MSG(np >= 1, "transport spec: np must be >= 1, got %d", np);
  if (distributed()) {
    PARDA_CHECK_MSG(kind != TransportKind::kThreads,
                    "transport 'threads' cannot span processes; use shm or "
                    "tcp for rank=%d",
                    local_rank);
    PARDA_CHECK_MSG(local_rank < np,
                    "transport rank %d out of range for np=%d", local_rank,
                    np);
    if (kind == TransportKind::kShm) {
      PARDA_CHECK_MSG(!segment.empty(),
                      "distributed shm transport needs segment=NAME so "
                      "peer processes can attach");
    }
    if (kind == TransportKind::kTcp) {
      PARDA_CHECK_MSG(static_cast<int>(peers.size()) == np,
                      "distributed tcp transport needs one host:port peer "
                      "per rank (got %zu for np=%d)",
                      peers.size(), np);
    }
  } else {
    PARDA_CHECK_MSG(peers.empty(),
                    "tcp peers are only meaningful with rank=N (one process "
                    "per rank); in-process worlds build their own loopback "
                    "mesh");
  }
}

}  // namespace parda::comm
