#include "comm/transport/ring.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace parda::comm::transport {

namespace {

constexpr std::uint32_t kSegmentMagic = 0x53444250u;  // "PBDS"
constexpr std::size_t kAlign = 64;

constexpr std::size_t align_up(std::size_t n) {
  return (n + kAlign - 1) & ~(kAlign - 1);
}

/// Segment preamble. state flips 0 -> 1 once the creator finished
/// initializing, so attachers never observe half-built rings.
struct SegmentHeader {
  std::uint32_t magic;
  std::atomic<std::uint32_t> state;
  std::int32_t np;
  std::uint32_t pad;
  std::uint64_t ring_bytes;
};
static_assert(sizeof(SegmentHeader) <= kAlign);

long sys_futex(const void* addr, int op, std::uint32_t val,
               const timespec* timeout) {
  return ::syscall(SYS_futex, addr, op, val, timeout, nullptr, 0);
}

}  // namespace

void futex_wait(const std::atomic<std::uint32_t>* addr,
                std::uint32_t expected, std::chrono::milliseconds timeout) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  ts.tv_nsec = static_cast<long>((timeout.count() % 1000) * 1000000);
  // FUTEX_WAIT without FUTEX_PRIVATE_FLAG: the word may be shared between
  // processes through the mapped segment.
  sys_futex(addr, FUTEX_WAIT, expected, &ts);
}

void futex_wake_all(const std::atomic<std::uint32_t>* addr) {
  sys_futex(addr, FUTEX_WAKE, INT32_MAX, nullptr);
}

bool ByteRing::write(const std::byte* src, std::size_t n,
                     const std::function<bool()>& keep_waiting,
                     const std::function<void()>& notify) {
  while (n > 0) {
    const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
    const std::size_t space =
        capacity_ - static_cast<std::size_t>(head - tail);
    if (space == 0) {
      const std::uint32_t seq =
          header_->space_seq.load(std::memory_order_acquire);
      // Re-check after the snapshot: a consume between the space check and
      // the wait would otherwise be missed.
      if (header_->tail.load(std::memory_order_acquire) != tail) continue;
      if (!keep_waiting()) return false;
      futex_wait(&header_->space_seq, seq, std::chrono::milliseconds(10));
      continue;
    }
    const std::size_t chunk = space < n ? space : n;
    const std::size_t pos = static_cast<std::size_t>(head % capacity_);
    const std::size_t first = std::min(chunk, capacity_ - pos);
    std::memcpy(data_ + pos, src, first);
    if (chunk > first) std::memcpy(data_, src + first, chunk - first);
    header_->head.store(head + chunk, std::memory_order_release);
    notify();
    src += chunk;
    n -= chunk;
  }
  return true;
}

std::size_t ByteRing::read_some(std::byte* dst, std::size_t max) {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t n = avail < max ? avail : max;
  if (n == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(tail % capacity_);
  const std::size_t first = std::min(n, capacity_ - pos);
  std::memcpy(dst, data_ + pos, first);
  if (n > first) std::memcpy(dst + first, data_, n - first);
  header_->tail.store(tail + n, std::memory_order_release);
  header_->space_seq.fetch_add(1, std::memory_order_release);
  futex_wake_all(&header_->space_seq);
  return n;
}

void ByteRing::clear() {
  header_->head.store(0, std::memory_order_relaxed);
  header_->tail.store(0, std::memory_order_relaxed);
  header_->space_seq.store(0, std::memory_order_relaxed);
}

std::size_t FrameReader::drain(
    const std::function<std::size_t(std::byte*, std::size_t)>& pull,
    const std::function<void(const FrameHeader&, std::vector<std::byte>&&)>&
        sink) {
  std::size_t consumed = 0;
  for (;;) {
    if (!in_payload_) {
      std::byte* raw = reinterpret_cast<std::byte*>(&header_);
      const std::size_t got =
          pull(raw + have_, sizeof(FrameHeader) - have_);
      consumed += got;
      have_ += got;
      if (have_ < sizeof(FrameHeader)) return consumed;
      check_frame_header(header_);
      payload_.resize(static_cast<std::size_t>(header_.payload_bytes));
      have_ = 0;
      in_payload_ = true;
    }
    const std::size_t got = payload_.empty()
                                ? 0
                                : pull(payload_.data() + have_,
                                       payload_.size() - have_);
    consumed += got;
    have_ += got;
    if (have_ < payload_.size()) return consumed;
    sink(header_, std::move(payload_));
    payload_ = {};
    have_ = 0;
    in_payload_ = false;
    if (consumed == 0) return 0;  // empty-payload frame already delivered
  }
}

void FrameReader::reset() {
  have_ = 0;
  in_payload_ = false;
  payload_ = {};
}

std::size_t ShmSegment::segment_size(int np, std::size_t ring_bytes) {
  const std::size_t rings = static_cast<std::size_t>(np) *
                            static_cast<std::size_t>(np);
  return align_up(sizeof(SegmentHeader)) +
         static_cast<std::size_t>(np + 1) * kAlign +  // doorbells, one/line
         rings * (kAlign + align_up(ring_bytes));
}

ShmSegment ShmSegment::create(int np, std::size_t ring_bytes,
                              const std::string& name) {
  PARDA_CHECK_MSG(np >= 1, "shm segment needs np >= 1, got %d", np);
  PARDA_CHECK_MSG(ring_bytes >= 256,
                  "shm ring of %zu bytes is below the 256-byte minimum",
                  ring_bytes);
  ShmSegment seg;
  seg.np_ = np;
  seg.ring_bytes_ = align_up(ring_bytes);
  seg.size_ = segment_size(np, ring_bytes);
  seg.name_ = name;
  if (name.empty()) {
    seg.base_ = ::mmap(nullptr, seg.size_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    PARDA_CHECK_MSG(seg.base_ != MAP_FAILED, "shm segment mmap failed: %s",
                    std::strerror(errno));
  } else {
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    PARDA_CHECK_MSG(fd >= 0, "shm_open('%s') failed: %s", name.c_str(),
                    std::strerror(errno));
    seg.creator_ = true;
    if (::ftruncate(fd, static_cast<off_t>(seg.size_)) != 0) {
      const int err = errno;
      ::close(fd);
      ::shm_unlink(name.c_str());
      PARDA_CHECK_MSG(false, "ftruncate('%s', %zu) failed: %s", name.c_str(),
                      seg.size_, std::strerror(err));
    }
    seg.base_ = ::mmap(nullptr, seg.size_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (seg.base_ == MAP_FAILED) {
      seg.base_ = nullptr;
      ::shm_unlink(name.c_str());
      PARDA_CHECK_MSG(false, "shm segment mmap('%s') failed", name.c_str());
    }
  }
  std::memset(seg.base_, 0, sizeof(SegmentHeader));
  auto* header = static_cast<SegmentHeader*>(seg.base_);
  header->magic = kSegmentMagic;
  header->np = np;
  header->ring_bytes = seg.ring_bytes_;
  seg.map_layout();
  for (int s = 0; s < np; ++s) {
    for (int d = 0; d < np; ++d) seg.ring(s, d).clear();
  }
  header->state.store(1, std::memory_order_release);
  return seg;
}

ShmSegment ShmSegment::attach(const std::string& name, int np,
                              std::size_t ring_bytes) {
  PARDA_CHECK_MSG(!name.empty(), "shm attach needs a segment name");
  ShmSegment seg;
  seg.np_ = np;
  seg.ring_bytes_ = align_up(ring_bytes);
  seg.size_ = segment_size(np, ring_bytes);
  seg.name_ = name;
  int fd = -1;
  // The creator may not have run yet: retry the open, then wait for the
  // ready flag, bounded so a missing launcher fails loud instead of
  // hanging.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd >= 0) break;
    PARDA_CHECK_MSG(errno == ENOENT, "shm_open('%s') failed: %s",
                    name.c_str(), std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  PARDA_CHECK_MSG(fd >= 0,
                  "shm segment '%s' never appeared (is rank 0 running?)",
                  name.c_str());
  // Wait for the creator's ftruncate before mapping.
  struct stat st{};
  for (int attempt = 0; attempt < 1000; ++attempt) {
    PARDA_CHECK_MSG(::fstat(fd, &st) == 0, "fstat('%s') failed",
                    name.c_str());
    if (static_cast<std::size_t>(st.st_size) >= seg.size_) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  PARDA_CHECK_MSG(static_cast<std::size_t>(st.st_size) >= seg.size_,
                  "shm segment '%s' is %lld bytes, need %zu — geometry "
                  "mismatch (np/ring must agree across ranks)",
                  name.c_str(), static_cast<long long>(st.st_size),
                  seg.size_);
  seg.base_ = ::mmap(nullptr, seg.size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  ::close(fd);
  PARDA_CHECK_MSG(seg.base_ != MAP_FAILED, "shm segment mmap('%s') failed",
                  name.c_str());
  auto* header = static_cast<SegmentHeader*>(seg.base_);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    if (header->state.load(std::memory_order_acquire) == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  PARDA_CHECK_MSG(header->state.load(std::memory_order_acquire) == 1,
                  "shm segment '%s' never became ready", name.c_str());
  PARDA_CHECK_MSG(header->magic == kSegmentMagic &&
                      header->np == np &&
                      header->ring_bytes == seg.ring_bytes_,
                  "shm segment '%s' geometry mismatch (np %d vs %d)",
                  name.c_str(), header->np, np);
  seg.map_layout();
  return seg;
}

void ShmSegment::map_layout() {
  auto* cursor = static_cast<std::byte*>(base_) +
                 align_up(sizeof(SegmentHeader));
  doorbells_ = reinterpret_cast<std::atomic<std::uint32_t>*>(cursor);
  cursor += static_cast<std::size_t>(np_ + 1) * kAlign;
  const std::size_t rings = static_cast<std::size_t>(np_) *
                            static_cast<std::size_t>(np_);
  ring_headers_.resize(rings);
  ring_data_.resize(rings);
  for (std::size_t i = 0; i < rings; ++i) {
    ring_headers_[i] = reinterpret_cast<RingHeader*>(cursor);
    cursor += kAlign;
    ring_data_[i] = cursor;
    cursor += ring_bytes_;
  }
}

ByteRing ShmSegment::ring(int src, int dst) {
  const std::size_t i = static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(np_) +
                        static_cast<std::size_t>(dst);
  return ByteRing(ring_headers_[i], ring_data_[i], ring_bytes_);
}

std::atomic<std::uint32_t>* ShmSegment::doorbell(int index) {
  return reinterpret_cast<std::atomic<std::uint32_t>*>(
      reinterpret_cast<std::byte*>(doorbells_) +
      static_cast<std::size_t>(index) * kAlign);
}

void ShmSegment::ring_doorbell(int dst) {
  doorbell(dst)->fetch_add(1, std::memory_order_release);
  futex_wake_all(doorbell(dst));
  doorbell(np_)->fetch_add(1, std::memory_order_release);
  futex_wake_all(doorbell(np_));
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept { *this = std::move(other); }

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this == &other) return *this;
  this->~ShmSegment();
  base_ = other.base_;
  size_ = other.size_;
  np_ = other.np_;
  ring_bytes_ = other.ring_bytes_;
  name_ = std::move(other.name_);
  creator_ = other.creator_;
  ring_headers_ = std::move(other.ring_headers_);
  ring_data_ = std::move(other.ring_data_);
  doorbells_ = other.doorbells_;
  other.base_ = nullptr;
  other.creator_ = false;
  other.doorbells_ = nullptr;
  return *this;
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (creator_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    creator_ = false;
  }
}

}  // namespace parda::comm::transport
