// The shm transport: every cross-rank message serializes as a frame
// through the (src, dst) byte ring of a shared-memory segment, and a pump
// thread per process drains the rings of its local rank(s) into their
// mailboxes. In-process worlds map the segment anonymously (the wire is
// real, only the rendezvous is skipped); distributed worlds shm_open a
// named segment that rank 0's process creates and the others attach.
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "comm/comm.hpp"
#include "comm/transport/ring.hpp"
#include "comm/transport/transport.hpp"
#include "util/check.hpp"

namespace parda::comm::transport {

namespace {

class ShmTransport final : public Transport {
 public:
  ShmTransport(const TransportSpec& spec, detail::World& world, int np)
      : world_(world),
        np_(np),
        local_rank_(spec.local_rank),
        readers_(static_cast<std::size_t>(np) * static_cast<std::size_t>(np)) {
    if (!spec.distributed() || spec.local_rank == 0) {
      segment_ = ShmSegment::create(np, spec.ring_bytes, spec.segment);
    } else {
      segment_ = ShmSegment::attach(spec.segment, np, spec.ring_bytes);
    }
  }

  ~ShmTransport() override { stop(); }

  TransportKind kind() const noexcept override { return TransportKind::kShm; }

  void post(int src, int dst, Message&& msg) override {
    FrameHeader header;
    header.kind = static_cast<std::uint32_t>(FrameKind::kData);
    header.src = msg.src;
    header.origin = msg.origin;
    header.tag = msg.tag;
    header.generation = static_cast<std::uint32_t>(world_.generation());
    const std::span<const std::byte> payload = msg.payload.bytes();
    header.payload_bytes = payload.size();
    // In a distributed world this process can have two producers on the
    // same (src, dst) ring — the rank thread and the telemetry forwarder —
    // and a frame must hit the SPSC ring as one contiguous byte stream.
    std::lock_guard lock(post_mu_);
    if (!write_frame(src, dst, header, payload, /*best_effort=*/false)) {
      // The only way a non-best-effort write bails is the world aborting
      // (or teardown racing a straggler send, which the abort also covers).
      world_.throw_aborted();
    }
  }

  void broadcast_abort(int origin, const std::string& cause) override {
    if (local_rank_ < 0) return;  // in-process: local poisoning reached all
    FrameHeader header;
    header.kind = static_cast<std::uint32_t>(FrameKind::kAbort);
    header.src = local_rank_;
    header.origin = origin;
    header.tag = origin;  // abort frames carry the origin in the tag field
    header.generation = static_cast<std::uint32_t>(world_.generation());
    header.payload_bytes = cause.size();
    const auto* bytes = reinterpret_cast<const std::byte*>(cause.data());
    std::lock_guard lock(post_mu_);
    for (int dst = 0; dst < np_; ++dst) {
      if (dst == local_rank_) continue;
      // Best effort with a bounded wait: a peer that already tore down
      // stops draining its rings, and an abort must never hang teardown.
      write_frame(local_rank_, dst, header, {bytes, cause.size()},
                  /*best_effort=*/true);
    }
  }

  void start() override {
    stop_.store(false, std::memory_order_release);
    pump_ = std::thread([this] { pump_main(); });
  }

  void stop() override {
    if (!pump_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    // The pump may be parked on its doorbell; bump every consumer's word
    // (sibling processes just re-check their own stop flags and re-park).
    for (int d = 0; d < np_; ++d) segment_.ring_doorbell(d);
    pump_.join();
  }

  void clear(bool aborted) override {
    // Pooled in-process reuse only (distributed worlds live for one run);
    // pumps are stopped, so the rings are quiesced. An aborted job may
    // have abandoned writes mid-frame — rewinding the rings and resetting
    // the readers restores stream sync either way.
    (void)aborted;
    for (int src = 0; src < np_; ++src) {
      for (int dst = 0; dst < np_; ++dst) {
        if (src == dst) continue;
        segment_.ring(src, dst).clear();
        reader(src, dst).reset();
      }
    }
  }

 private:
  FrameReader& reader(int src, int dst) {
    return readers_[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(np_) +
                    static_cast<std::size_t>(dst)];
  }

  /// Streams one frame into the (src, dst) ring, blocking on ring space.
  /// Returns false when the wait was abandoned (abort/stop/deadline).
  bool write_frame(int src, int dst, const FrameHeader& header,
                   std::span<const std::byte> payload, bool best_effort) {
    ByteRing ring = segment_.ring(src, dst);
    const auto notify = [this, dst] { segment_.ring_doorbell(dst); };
    std::function<bool()> keep_waiting;
    if (best_effort) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      keep_waiting = [this, deadline] {
        return !stop_.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < deadline;
      };
    } else {
      keep_waiting = [this] {
        return !stop_.load(std::memory_order_acquire) && !world_.aborted();
      };
    }
    if (!ring.write(reinterpret_cast<const std::byte*>(&header),
                    sizeof(header), keep_waiting, notify)) {
      return false;
    }
    if (payload.empty()) return true;
    return ring.write(payload.data(), payload.size(), keep_waiting, notify);
  }

  void pump_main() {
    // One pump serves every local consumer: all ranks in-process (parked
    // on the "any" doorbell), just local_rank in a distributed world.
    std::vector<int> consumers;
    if (local_rank_ < 0) {
      for (int d = 0; d < np_; ++d) consumers.push_back(d);
    } else {
      consumers.push_back(local_rank_);
    }
    std::atomic<std::uint32_t>* doorbell =
        segment_.doorbell(local_rank_ < 0 ? np_ : local_rank_);
    try {
      for (;;) {
        const std::uint32_t snapshot =
            doorbell->load(std::memory_order_acquire);
        bool progressed = false;
        for (const int dst : consumers) {
          for (int src = 0; src < np_; ++src) {
            if (src == dst) continue;
            ByteRing ring = segment_.ring(src, dst);
            const std::size_t consumed = reader(src, dst).drain(
                [&ring](std::byte* buf, std::size_t max) {
                  return ring.read_some(buf, max);
                },
                [this, dst](const FrameHeader& h,
                            std::vector<std::byte>&& payload) {
                  deliver(dst, h, std::move(payload));
                });
            progressed |= consumed > 0;
          }
        }
        if (stop_.load(std::memory_order_acquire)) return;
        if (!progressed) {
          futex_wait(doorbell, snapshot, std::chrono::milliseconds(100));
        }
      }
    } catch (const std::exception& e) {
      // A desynced/corrupt stream is unrecoverable for this job: abort the
      // world (first failure wins) and stop pumping; clear() restores the
      // rings for the next job.
      const int origin = local_rank_ < 0 ? 0 : local_rank_;
      world_.abort(origin, std::string("shm transport: ") + e.what());
    }
  }

  void deliver(int dst, const FrameHeader& header,
               std::vector<std::byte>&& payload) {
    if (header.kind == static_cast<std::uint32_t>(FrameKind::kAbort)) {
      world_.abort_remote(
          header.tag,
          std::string(reinterpret_cast<const char*>(payload.data()),
                      payload.size()));
      return;
    }
    if (header.generation !=
        static_cast<std::uint32_t>(world_.generation())) {
      return;  // leftover of an earlier pooled job
    }
    Message msg;
    msg.src = header.src;
    msg.origin = header.origin;
    msg.tag = header.tag;
    msg.payload = Payload::own(std::move(payload));
    world_.mailbox(dst).push(std::move(msg));
  }

  detail::World& world_;
  const int np_;
  const int local_rank_;
  ShmSegment segment_;
  std::vector<FrameReader> readers_;  // indexed src * np + dst
  std::mutex post_mu_;  // serializes same-process producers per segment
  std::thread pump_;
  std::atomic<bool> stop_{false};
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(const TransportSpec& spec,
                                              detail::World& world, int np) {
  return std::make_unique<ShmTransport>(spec, world, np);
}

}  // namespace parda::comm::transport
