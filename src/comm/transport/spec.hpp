// TransportSpec: the runtime-configuration half of the transport layer.
//
// A TransportSpec names which wire a World's messages travel on and the
// transport's endpoint/segment parameters. It is a plain value: parseable
// from one CLI/env spelling (`kind[:key=val,...]`), printable back via
// describe(), and composed into comm::RunOptions so every entry point that
// already takes RunOptions (run(), WorkerPool::run_job, PardaOptions)
// selects its transport the same way.
//
// Kinds:
//   threads  in-process mailbox transport (the default). Payload handles
//            move by refcount — zero-copy sends and shared-block views.
//   shm      shared-memory transport: per-(src,dst) byte rings with futex
//            doorbells in one mapped segment. With `segment=NAME` the
//            segment is shm_open'd by name so ranks may live in separate
//            processes (one process per rank, see local_rank).
//   tcp      socket transport: one connection per peer pair, length-
//            prefixed frames, bounded send queues flushed by non-blocking
//            writes. With `peers=H:P,...` ranks span hosts.
//
// In-process vs distributed: by default every rank of the World lives in
// the calling process (rank bodies on pool worker threads) whatever the
// transport — that is how the cross-transport equality suite runs one
// binary over all three wires. Setting local_rank >= 0 declares that THIS
// process hosts exactly that one rank of an np-rank World whose peers run
// elsewhere (launched by scripts/run_distributed.sh or by hand).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parda::comm {

/// local_rank value meaning "all np ranks live in this process".
inline constexpr int kAllRanksLocal = -1;

enum class TransportKind : int {
  kThreads = 0,
  kShm = 1,
  kTcp = 2,
};

const char* transport_kind_name(TransportKind kind) noexcept;

struct TransportSpec {
  TransportKind kind = TransportKind::kThreads;

  /// Which rank this process hosts; kAllRanksLocal = every rank (threads
  /// in one process). Distributed mode requires a non-threads transport.
  int local_rank = kAllRanksLocal;

  // --- shm parameters -------------------------------------------------------
  /// Per-(src,dst) ring capacity in bytes. Frames larger than the ring
  /// stream through it in pieces, so this bounds memory, not message size.
  std::size_t ring_bytes = 1u << 18;
  /// Segment name for cross-process attachment ("/parda-..."); empty = an
  /// anonymous process-private mapping (in-process shm).
  std::string segment;

  // --- tcp parameters -------------------------------------------------------
  /// host:port endpoint per rank (size must equal np in distributed mode).
  /// Empty = in-process loopback mesh on ephemeral ports.
  std::vector<std::string> peers;
  /// Per-peer send-queue cap in bytes; a sender whose queue is full blocks
  /// (backpressure) until the IO thread drains it.
  std::size_t sendq_bytes = 8u << 20;

  bool distributed() const noexcept { return local_rank != kAllRanksLocal; }
  bool zero_copy() const noexcept { return kind == TransportKind::kThreads; }

  /// Parses `kind[:key=val,...]`; keys: ring, segment (shm); peers, sendq
  /// (tcp; peers separated by '+'). Throws parda::CheckError on unknown
  /// kinds/keys or malformed values.
  static TransportSpec parse(const std::string& text);

  /// Canonical round-trippable spelling (parse(describe()) == *this, minus
  /// defaulted fields).
  std::string describe() const;

  /// Stable identity string for world caching and bench-point params
  /// ("threads", "shm", "tcp", ...): the kind plus any identity-bearing
  /// parameters, without endpoint noise like ephemeral ports.
  std::string signature() const;

  /// Throws parda::CheckError when the spec cannot drive an np-rank World
  /// (threads+distributed, peers count mismatch, local_rank out of range).
  void validate(int np) const;

  bool operator==(const TransportSpec& other) const = default;
};

}  // namespace parda::comm
