// The tcp transport: one TCP connection per rank pair, length-prefixed
// frames, a single IO thread per process running a poll() loop. Sends go
// through bounded per-connection queues — a producer whose queue is full
// blocks (backpressure) until the IO thread's non-blocking writes drain
// it; receives are reassembled incrementally by a FrameReader per
// connection and delivered into the destination rank's mailbox.
//
// In-process worlds build a loopback mesh over an ephemeral listener (both
// ends of every connection live in this process, so the wire — kernel
// socket buffers included — is real even though no second process is).
// Distributed worlds take spec.peers[r] = host:port per rank: every rank
// listens on its own port, connects to all lower ranks, and accepts from
// all higher ranks, identifying itself with a 4-byte rank handshake.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "comm/comm.hpp"
#include "comm/transport/ring.hpp"
#include "comm/transport/transport.hpp"
#include "util/check.hpp"

namespace parda::comm::transport {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PARDA_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "tcp transport: fcntl(O_NONBLOCK) failed: %s",
                  std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking-fd full write/read for the mesh handshakes.
bool write_full(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_full(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

HostPort split_host_port(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  PARDA_CHECK_MSG(colon != std::string::npos && colon + 1 < endpoint.size(),
                  "tcp peer '%s' is not host:port", endpoint.c_str());
  char* end = nullptr;
  const long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
  PARDA_CHECK_MSG(end != nullptr && *end == '\0' && port > 0 && port < 65536,
                  "tcp peer '%s' has a bad port", endpoint.c_str());
  return {endpoint.substr(0, colon), static_cast<std::uint16_t>(port)};
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(const TransportSpec& spec, detail::World& world, int np)
      : world_(world),
        np_(np),
        local_rank_(spec.local_rank),
        sendq_bytes_(spec.sendq_bytes),
        channels_(static_cast<std::size_t>(np) *
                  static_cast<std::size_t>(np)) {
    int pipefd[2];
    PARDA_CHECK_MSG(::pipe2(pipefd, O_NONBLOCK) == 0,
                    "tcp transport: pipe2 failed: %s", std::strerror(errno));
    wake_rd_ = pipefd[0];
    wake_wr_ = pipefd[1];
    if (local_rank_ < 0) {
      build_inprocess_mesh();
    } else {
      build_distributed_mesh(spec);
    }
  }

  ~TcpTransport() override {
    stop();
    close_mesh();
    ::close(wake_rd_);
    ::close(wake_wr_);
  }

  TransportKind kind() const noexcept override { return TransportKind::kTcp; }

  void post(int src, int dst, Message&& msg) override {
    Channel& ch = channel(src, dst);
    FrameHeader header;
    header.kind = static_cast<std::uint32_t>(FrameKind::kData);
    header.src = msg.src;
    header.origin = msg.origin;
    header.tag = msg.tag;
    header.generation = static_cast<std::uint32_t>(world_.generation());
    header.payload_bytes = msg.payload.size_bytes();
    std::vector<std::byte> frame = encode_frame(header, msg.payload.bytes());
    {
      std::unique_lock lock(ch.mu);
      // Backpressure: wait for queue space. A frame larger than the whole
      // bound is still admitted when the queue is empty, so the bound
      // limits memory without deadlocking oversized messages.
      while (!ch.queue.empty() &&
             ch.queued_bytes + frame.size() > sendq_bytes_) {
        if (world_.aborted()) world_.throw_aborted();
        PARDA_CHECK_MSG(!ch.closed,
                        "tcp transport: connection %d->%d is down", src, dst);
        ch.cv.wait_for(lock, std::chrono::milliseconds(10));
      }
      PARDA_CHECK_MSG(!ch.closed,
                      "tcp transport: connection %d->%d is down", src, dst);
      ch.queued_bytes += frame.size();
      ch.queue.push_back(std::move(frame));
    }
    wake_io();
  }

  void broadcast_abort(int origin, const std::string& cause) override {
    if (local_rank_ < 0) return;  // in-process: local poisoning reached all
    FrameHeader header;
    header.kind = static_cast<std::uint32_t>(FrameKind::kAbort);
    header.src = local_rank_;
    header.origin = origin;
    header.tag = origin;  // abort frames carry the origin in the tag field
    header.generation = static_cast<std::uint32_t>(world_.generation());
    header.payload_bytes = cause.size();
    const std::span<const std::byte> payload{
        reinterpret_cast<const std::byte*>(cause.data()), cause.size()};
    for (int dst = 0; dst < np_; ++dst) {
      if (dst == local_rank_) continue;
      Channel& ch = channel(local_rank_, dst);
      std::lock_guard lock(ch.mu);
      if (ch.closed) continue;
      // Control frames bypass the backpressure bound: an abort must not
      // block behind a full data queue. The IO thread's stop linger gives
      // them a bounded chance to flush before teardown.
      std::vector<std::byte> frame = encode_frame(header, payload);
      ch.queued_bytes += frame.size();
      ch.queue.push_back(std::move(frame));
    }
    wake_io();
  }

  void start() override {
    stop_.store(false, std::memory_order_release);
    io_ = std::thread([this] { io_main(); });
  }

  void stop() override {
    if (!io_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    wake_io();
    io_.join();
  }

  void clear(bool aborted) override {
    // Pooled in-process reuse only; the IO thread is stopped. A partially
    // flushed frame (head_off != 0) means the byte stream is desynced
    // mid-frame and the mesh must be rebuilt; whole undelivered frames are
    // harmless — the next job's generation filter drops them on receipt.
    bool rebuild = aborted;
    for (auto& ch : channels_) {
      if (ch == nullptr) continue;
      std::lock_guard lock(ch->mu);
      rebuild |= ch->head_off != 0;
      rebuild |= ch->closed;
      ch->queue.clear();
      ch->queued_bytes = 0;
      ch->head_off = 0;
      ch->reader.reset();
    }
    if (rebuild) {
      close_mesh();
      for (auto& ch : channels_) {
        if (ch != nullptr) ch->closed = false;
      }
      build_inprocess_mesh();
    }
  }

 private:
  struct Channel {
    int fd = -1;
    int owner = -1;  // local rank that receives on this end
    int peer = -1;   // rank on the other end
    std::mutex mu;
    std::condition_variable cv;  // producers waiting for queue space
    std::deque<std::vector<std::byte>> queue;
    std::size_t queued_bytes = 0;
    std::size_t head_off = 0;  // bytes of queue.front() already written
    FrameReader reader;
    // Written by the IO thread (EOF / write error), read by producers in
    // post(); atomic so the flag needs no lock on the IO side.
    std::atomic<bool> closed{false};
  };

  Channel& channel(int owner, int peer) {
    auto& slot = channels_[static_cast<std::size_t>(owner) *
                               static_cast<std::size_t>(np_) +
                           static_cast<std::size_t>(peer)];
    PARDA_CHECK_MSG(slot != nullptr, "tcp transport: no channel %d->%d",
                    owner, peer);
    return *slot;
  }

  Channel& make_channel(int owner, int peer, int fd) {
    auto& slot = channels_[static_cast<std::size_t>(owner) *
                               static_cast<std::size_t>(np_) +
                           static_cast<std::size_t>(peer)];
    if (slot == nullptr) slot = std::make_unique<Channel>();
    set_nonblocking(fd);
    set_nodelay(fd);
    slot->fd = fd;
    slot->owner = owner;
    slot->peer = peer;
    return *slot;
  }

  void close_mesh() {
    for (auto& ch : channels_) {
      if (ch != nullptr && ch->fd >= 0) {
        ::close(ch->fd);
        ch->fd = -1;
      }
    }
  }

  void wake_io() {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t w = ::write(wake_wr_, &byte, 1);
    // EAGAIN (pipe full) is fine: a wakeup is already pending.
  }

  // --- mesh construction --------------------------------------------------

  void build_inprocess_mesh() {
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    PARDA_CHECK_MSG(lfd >= 0, "tcp transport: socket failed: %s",
                    std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    PARDA_CHECK_MSG(
        ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
            ::listen(lfd, np_ * np_) == 0,
        "tcp transport: bind/listen on loopback failed: %s",
        std::strerror(errno));
    socklen_t len = sizeof(addr);
    PARDA_CHECK(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr),
                              &len) == 0);
    for (int i = 0; i < np_; ++i) {
      for (int j = i + 1; j < np_; ++j) {
        const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
        PARDA_CHECK_MSG(
            cfd >= 0 && ::connect(cfd, reinterpret_cast<sockaddr*>(&addr),
                                  sizeof(addr)) == 0,
            "tcp transport: loopback connect failed: %s",
            std::strerror(errno));
        const std::uint32_t hello[2] = {static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(j)};
        PARDA_CHECK(write_full(cfd, hello, sizeof(hello)));
        const int afd = ::accept(lfd, nullptr, nullptr);
        PARDA_CHECK_MSG(afd >= 0, "tcp transport: loopback accept failed: %s",
                        std::strerror(errno));
        std::uint32_t got[2] = {0, 0};
        PARDA_CHECK(read_full(afd, got, sizeof(got)));
        PARDA_CHECK_MSG(got[0] == hello[0] && got[1] == hello[1],
                        "tcp transport: loopback handshake mismatch");
        make_channel(i, j, cfd);
        make_channel(j, i, afd);
      }
    }
    ::close(lfd);
  }

  int connect_with_retry(const HostPort& target) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    const std::string port = std::to_string(target.port);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      addrinfo* res = nullptr;
      const int rc = ::getaddrinfo(target.host.c_str(), port.c_str(), &hints,
                                   &res);
      if (rc == 0) {
        const int fd = ::socket(res->ai_family, res->ai_socktype,
                                res->ai_protocol);
        if (fd >= 0) {
          if (::connect(fd, res->ai_addr, res->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            return fd;
          }
          ::close(fd);
        }
        ::freeaddrinfo(res);
      }
      PARDA_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                      "tcp transport: cannot reach peer %s:%u from rank %d",
                      target.host.c_str(), target.port, local_rank_);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  void build_distributed_mesh(const TransportSpec& spec) {
    const HostPort mine = split_host_port(
        spec.peers[static_cast<std::size_t>(local_rank_)]);
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    PARDA_CHECK_MSG(lfd >= 0, "tcp transport: socket failed: %s",
                    std::strerror(errno));
    int one = 1;
    ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(mine.port);
    PARDA_CHECK_MSG(
        ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
            ::listen(lfd, np_) == 0,
        "tcp transport: rank %d cannot listen on port %u: %s", local_rank_,
        mine.port, std::strerror(errno));
    // Deterministic direction: connect to every lower rank's listener,
    // accept from every higher rank. The 4-byte handshake names the
    // connector, so accept order never matters.
    for (int peer = 0; peer < local_rank_; ++peer) {
      const int fd = connect_with_retry(
          split_host_port(spec.peers[static_cast<std::size_t>(peer)]));
      const std::uint32_t me = static_cast<std::uint32_t>(local_rank_);
      PARDA_CHECK(write_full(fd, &me, sizeof(me)));
      make_channel(local_rank_, peer, fd);
    }
    for (int n = np_ - 1 - local_rank_; n > 0; --n) {
      pollfd pfd{lfd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 30000);
      PARDA_CHECK_MSG(rc > 0,
                      "tcp transport: rank %d timed out waiting for %d "
                      "inbound connection(s)",
                      local_rank_, n);
      const int fd = ::accept(lfd, nullptr, nullptr);
      PARDA_CHECK_MSG(fd >= 0, "tcp transport: accept failed: %s",
                      std::strerror(errno));
      std::uint32_t peer = 0;
      PARDA_CHECK(read_full(fd, &peer, sizeof(peer)));
      PARDA_CHECK_MSG(static_cast<int>(peer) > local_rank_ &&
                          static_cast<int>(peer) < np_,
                      "tcp transport: handshake named bad rank %u", peer);
      make_channel(local_rank_, static_cast<int>(peer), fd);
    }
    ::close(lfd);
  }

  // --- IO loop ------------------------------------------------------------

  void io_main() {
    std::vector<Channel*> active;
    for (auto& ch : channels_) {
      if (ch != nullptr) active.push_back(ch.get());
    }
    std::vector<pollfd> pfds;
    std::optional<std::chrono::steady_clock::time_point> linger;
    try {
      for (;;) {
        if (stop_.load(std::memory_order_acquire)) {
          // Linger briefly to flush queued frames (notably abort control
          // frames) before tearing down; bounded so teardown never hangs
          // on a dead peer.
          if (!linger.has_value()) {
            linger = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(500);
          }
          if (queues_empty() ||
              std::chrono::steady_clock::now() >= *linger) {
            return;
          }
        }
        pfds.clear();
        pfds.push_back(pollfd{wake_rd_, POLLIN, 0});
        for (Channel* ch : active) {
          short events = 0;
          if (ch->fd >= 0 && !ch->closed) {
            events = POLLIN;
            std::lock_guard lock(ch->mu);
            if (!ch->queue.empty()) events |= POLLOUT;
          }
          pfds.push_back(pollfd{ch->fd >= 0 ? ch->fd : -1, events, 0});
        }
        ::poll(pfds.data(), pfds.size(), 50);
        if (pfds[0].revents & POLLIN) {
          char drain[64];
          while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
          }
        }
        for (std::size_t i = 0; i < active.size(); ++i) {
          Channel* ch = active[i];
          const short revents = pfds[i + 1].revents;
          if (ch->fd < 0 || ch->closed) continue;
          if (revents & (POLLOUT | POLLERR | POLLHUP)) flush_channel(*ch);
          if (revents & (POLLIN | POLLERR | POLLHUP)) read_channel(*ch);
        }
      }
    } catch (const std::exception& e) {
      const int origin = local_rank_ < 0 ? 0 : local_rank_;
      world_.abort(origin, std::string("tcp transport: ") + e.what());
    }
  }

  bool queues_empty() {
    for (auto& ch : channels_) {
      if (ch == nullptr) continue;
      std::lock_guard lock(ch->mu);
      if (!ch->queue.empty()) return false;
    }
    return true;
  }

  void flush_channel(Channel& ch) {
    std::lock_guard lock(ch.mu);
    while (!ch.queue.empty()) {
      std::vector<std::byte>& buf = ch.queue.front();
      const ssize_t w = ::write(ch.fd, buf.data() + ch.head_off,
                                buf.size() - ch.head_off);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        ch.closed = true;
        break;
      }
      ch.head_off += static_cast<std::size_t>(w);
      if (ch.head_off == buf.size()) {
        ch.queued_bytes -= buf.size();
        ch.queue.pop_front();
        ch.head_off = 0;
        ch.cv.notify_all();  // backpressured producers re-check
      }
    }
  }

  void read_channel(Channel& ch) {
    // The reader and fd-read side are IO-thread-only: no lock needed.
    ch.reader.drain(
        [&ch](std::byte* buf, std::size_t max) -> std::size_t {
          const ssize_t r = ::read(ch.fd, buf, max);
          if (r > 0) return static_cast<std::size_t>(r);
          if (r == 0) ch.closed = true;  // EOF: peer tore down
          return 0;
        },
        [this, &ch](const FrameHeader& h, std::vector<std::byte>&& payload) {
          deliver(ch.owner, h, std::move(payload));
        });
  }

  void deliver(int dst, const FrameHeader& header,
               std::vector<std::byte>&& payload) {
    if (header.kind == static_cast<std::uint32_t>(FrameKind::kAbort)) {
      world_.abort_remote(
          header.tag,
          std::string(reinterpret_cast<const char*>(payload.data()),
                      payload.size()));
      return;
    }
    if (header.generation !=
        static_cast<std::uint32_t>(world_.generation())) {
      return;  // leftover of an earlier pooled job
    }
    Message msg;
    msg.src = header.src;
    msg.origin = header.origin;
    msg.tag = header.tag;
    msg.payload = Payload::own(std::move(payload));
    world_.mailbox(dst).push(std::move(msg));
  }

  detail::World& world_;
  const int np_;
  const int local_rank_;
  const std::size_t sendq_bytes_;
  std::vector<std::unique_ptr<Channel>> channels_;  // owner * np + peer
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::thread io_;
  std::atomic<bool> stop_{false};
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(const TransportSpec& spec,
                                              detail::World& world, int np) {
  return std::make_unique<TcpTransport>(spec, world, np);
}

}  // namespace parda::comm::transport
