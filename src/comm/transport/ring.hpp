// Shared-memory byte rings for the shm transport.
//
// The segment holds one SPSC byte ring per (src, dst) rank pair plus a
// doorbell word per consumer. A ring is a byte STREAM, not a slot queue:
// frames larger than the ring capacity simply stream through it in pieces
// (the producer publishes as space frees, the consumer's FrameReader
// reassembles), so ring_bytes bounds memory, never message size.
//
// Synchronization is monotonic head/tail counters with release/acquire
// ordering, plus raw futex(2) words for blocking — deliberately NOT
// std::atomic::wait, which glibc implements with process-PRIVATE futexes
// that cannot wake a waiter in another process sharing the mapping:
//   - a producer out of space waits on the ring's space_seq word, which
//     the consumer bumps after every consume;
//   - a consumer out of frames waits on its doorbell word, which every
//     producer bumps after every publish (plus the "any" doorbell that an
//     in-process pump serving all ranks waits on).
// All waits are timed so waiters can re-check abort/stop conditions.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/transport/frame.hpp"

namespace parda::comm::transport {

/// Timed wait on a 32-bit futex word shared between processes. Returns
/// when *addr != expected, on wakeup, on timeout, or spuriously.
void futex_wait(const std::atomic<std::uint32_t>* addr,
                std::uint32_t expected, std::chrono::milliseconds timeout);
/// Wakes every waiter on the word.
void futex_wake_all(const std::atomic<std::uint32_t>* addr);

/// Ring bookkeeping living inside the shared segment. head/tail are
/// monotonic byte counters (position = counter % capacity).
struct RingHeader {
  std::atomic<std::uint64_t> head{0};       // bytes produced
  std::atomic<std::uint64_t> tail{0};       // bytes consumed
  std::atomic<std::uint32_t> space_seq{0};  // consumer bumps after consume
  std::uint32_t pad = 0;
};
static_assert(sizeof(RingHeader) <= 64);

/// Non-owning SPSC view over one ring's header + data region.
class ByteRing {
 public:
  ByteRing() = default;
  ByteRing(RingHeader* header, std::byte* data, std::size_t capacity)
      : header_(header), data_(data), capacity_(capacity) {}

  /// Producer side: copies n bytes into the stream, blocking for space as
  /// needed. `keep_waiting` is consulted before every blocking wait;
  /// returning false abandons the write (stream poisoned — the caller must
  /// be tearing the world down). `notify` runs after every chunk publish
  /// (doorbell bump + wake).
  bool write(const std::byte* src, std::size_t n,
             const std::function<bool()>& keep_waiting,
             const std::function<void()>& notify);

  /// Consumer side: copies up to max readable bytes out; never blocks.
  std::size_t read_some(std::byte* dst, std::size_t max);

  std::size_t readable() const noexcept {
    return static_cast<std::size_t>(
        header_->head.load(std::memory_order_acquire) -
        header_->tail.load(std::memory_order_relaxed));
  }

  /// Quiesced-only: rewinds the stream and drops buffered bytes.
  void clear();

 private:
  RingHeader* header_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Incremental frame reassembly over a byte stream (ring or socket): feed
/// bytes in any fragmentation, get whole frames out. Never blocks, so a
/// pump can round-robin many streams without a slow producer starving the
/// rest.
class FrameReader {
 public:
  /// Consumes available bytes from `pull` (a read_some-shaped callable)
  /// and invokes `sink(header, payload)` for every completed frame.
  /// Returns the number of bytes consumed.
  std::size_t drain(
      const std::function<std::size_t(std::byte*, std::size_t)>& pull,
      const std::function<void(const FrameHeader&,
                               std::vector<std::byte>&&)>& sink);

  void reset();

 private:
  FrameHeader header_;
  std::size_t have_ = 0;        // bytes of the current section received
  bool in_payload_ = false;     // false: filling header_, true: payload_
  std::vector<std::byte> payload_;
};

/// The mapped segment: header, doorbells, np*np rings. Created anonymous
/// (MAP_SHARED|MAP_ANONYMOUS: shared with forked children only) or named
/// via shm_open so unrelated processes can attach by name.
class ShmSegment {
 public:
  /// In-process / pre-fork creation; name may be empty (anonymous).
  static ShmSegment create(int np, std::size_t ring_bytes,
                           const std::string& name);
  /// Attaches to a named segment created by rank 0's process, retrying
  /// until it exists and is marked ready (bounded; throws CheckError on
  /// timeout or geometry mismatch).
  static ShmSegment attach(const std::string& name, int np,
                           std::size_t ring_bytes);

  ShmSegment() = default;
  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment();

  bool valid() const noexcept { return base_ != nullptr; }
  int np() const noexcept { return np_; }

  ByteRing ring(int src, int dst);
  /// Consumer doorbell for rank dst; doorbell(np) is the "any consumer"
  /// word an in-process pump waits on.
  std::atomic<std::uint32_t>* doorbell(int index);

  /// Bumps + wakes dst's doorbell and the "any" doorbell.
  void ring_doorbell(int dst);

  static std::size_t segment_size(int np, std::size_t ring_bytes);

 private:
  void map_layout();

  void* base_ = nullptr;
  std::size_t size_ = 0;
  int np_ = 0;
  std::size_t ring_bytes_ = 0;
  std::string name_;     // non-empty only for named segments
  bool creator_ = false; // shm_unlink responsibility
  std::vector<RingHeader*> ring_headers_;
  std::vector<std::byte*> ring_data_;
  std::atomic<std::uint32_t>* doorbells_ = nullptr;
};

}  // namespace parda::comm::transport
