// The length-prefixed frame format shared by every serializing transport
// (see DESIGN.md "Transports"). A frame is a fixed 32-byte header followed
// by `payload_bytes` of payload:
//
//   u32 magic       'PDF1' — stream-desync tripwire
//   u32 kind        0 = data, 1 = abort control
//   i32 src         sending rank (envelope)
//   i32 origin      contributing rank (preserved across collective relays)
//   i32 tag         message tag; abort frames carry the abort origin here
//   u32 generation  World generation that produced the frame; receivers
//                   drop frames from earlier generations, so leftovers of
//                   a finished job can never leak into a pooled World's
//                   next job
//   u64 payload_bytes
//
// Multi-byte fields are native-endian: both shm and the loopback/LAN tcp
// mesh connect like-endianness hosts; a cross-endian wire would version
// the magic.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace parda::comm::transport {

inline constexpr std::uint32_t kFrameMagic = 0x31464450u;  // "PDF1"

enum class FrameKind : std::uint32_t {
  kData = 0,
  kAbort = 1,
};

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t kind = 0;
  std::int32_t src = 0;
  std::int32_t origin = 0;
  std::int32_t tag = 0;
  std::uint32_t generation = 0;
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(FrameHeader) == 32);
static_assert(std::is_trivially_copyable_v<FrameHeader>);

/// Serializes header + payload into one contiguous buffer (the tcp send
/// path; the shm path streams header and payload separately).
inline std::vector<std::byte> encode_frame(
    const FrameHeader& header, std::span<const std::byte> payload) {
  std::vector<std::byte> out(sizeof(FrameHeader) + payload.size());
  std::memcpy(out.data(), &header, sizeof(FrameHeader));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(FrameHeader), payload.data(),
                payload.size());
  }
  return out;
}

/// Validates a decoded header's fixed fields. Throws CheckError on a
/// desynced or corrupt stream — the caller turns this into an abort, never
/// into silent misdelivery.
inline void check_frame_header(const FrameHeader& header,
                               std::uint64_t max_payload =
                                   std::uint64_t{1} << 40) {
  PARDA_CHECK_MSG(header.magic == kFrameMagic,
                  "transport stream desync: bad frame magic 0x%08x",
                  header.magic);
  PARDA_CHECK_MSG(header.kind <= 1u, "transport frame: unknown kind %u",
                  header.kind);
  PARDA_CHECK_MSG(header.payload_bytes <= max_payload,
                  "transport frame: implausible payload of %llu bytes",
                  static_cast<unsigned long long>(header.payload_bytes));
}

}  // namespace parda::comm::transport
