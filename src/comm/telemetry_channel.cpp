#include "comm/telemetry_channel.hpp"

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/span_tracer.hpp"

namespace parda::comm::detail {

namespace {

/// Forwarding cadence; the smoke tests crank it down to catch mid-run
/// scrapes, production leaves the default 250 ms (~4 frames/s/process).
std::chrono::milliseconds interval_from_env() {
  const char* raw = std::getenv("PARDA_TELEMETRY_INTERVAL_MS");
  if (raw == nullptr || *raw == '\0') return std::chrono::milliseconds(250);
  char* end = nullptr;
  const long ms = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || ms < 1) {
    return std::chrono::milliseconds(250);
  }
  return std::chrono::milliseconds(ms);
}

bool read_i64(const Payload& p, std::int64_t& out) {
  const std::span<const std::byte> b = p.bytes();
  if (b.size() < sizeof(std::int64_t)) return false;
  std::memcpy(&out, b.data(), sizeof(std::int64_t));
  return true;
}

Message make_control(int src, int tag, Payload payload) {
  Message msg;
  msg.src = src;
  msg.origin = src;
  msg.tag = tag;
  msg.payload = std::move(payload);
  return msg;
}

}  // namespace

TelemetryChannel::TelemetryChannel(World& world, int rank)
    : world_(world),
      rank_(rank),
      np_(world.size()),
      active_(world.transport_spec().distributed() && world.size() > 1),
      interval_(interval_from_env()) {
  if (active_ && rank_ == 0) {
    final_seen_.assign(static_cast<std::size_t>(np_), false);
  }
}

TelemetryChannel::~TelemetryChannel() { cancel(); }

void TelemetryChannel::clock_handshake() {
  if (!active_) return;
  if (rank_ == 0) {
    handshake_hub();
  } else {
    handshake_remote();
  }
}

void TelemetryChannel::handshake_remote() {
  const OpDeadline deadline =
      std::chrono::steady_clock::now() + kHandshakeTimeout;
  obs::SpanTracer& t = obs::tracer();
  std::int64_t best_rtt = std::numeric_limits<std::int64_t>::max();
  try {
    for (int k = 0; k < kClockSamples; ++k) {
      const std::int64_t t0 = t.now_ns();
      world_.route(rank_, 0,
                   make_control(rank_, kTagClockPing,
                                Payload::own(std::vector<std::uint8_t>{0})));
      Message pong;
      const Mailbox::Wait wait =
          world_.mailbox(rank_).pop(0, kTagClockPong, pong, deadline);
      if (wait != Mailbox::Wait::kOk) break;
      const std::int64_t t1 = t.now_ns();
      std::int64_t m = 0;
      if (!read_i64(pong.payload, m)) break;
      const std::int64_t rtt = t1 - t0;
      if (rtt >= 0 && rtt < best_rtt) {
        best_rtt = rtt;
        // Midpoint estimator: assume the pong was stamped halfway through
        // the round trip. Cannot be off by more than rtt / 2.
        clock_.offset_ns = m - (t0 + rtt / 2);
        clock_.uncertainty_ns = rtt / 2;
      }
      ++clock_.samples;
    }
    clock_.valid = clock_.samples > 0;
    // Done marker, sent even after a failed exchange: rank 0 must not keep
    // waiting for this peer.
    world_.route(rank_, 0,
                 make_control(rank_, kTagClockPing,
                              Payload::own(std::vector<std::uint8_t>{1})));
  } catch (const RankAbortedError&) {
    clock_.valid = false;  // the run is going down; the body will see it
  }
  if (clock_.valid) {
    obs::log(obs::LogLevel::kDebug, "telemetry.clock")
        .field("rank", rank_)
        .field("offset_ns", clock_.offset_ns)
        .field("uncertainty_ns", clock_.uncertainty_ns)
        .field("samples", clock_.samples);
  }
}

void TelemetryChannel::handshake_hub() {
  const OpDeadline deadline =
      std::chrono::steady_clock::now() + kHandshakeTimeout;
  obs::SpanTracer& t = obs::tracer();
  int done = 0;
  try {
    while (done < np_ - 1) {
      Message msg;
      const Mailbox::Wait wait =
          world_.mailbox(0).pop(kAnySource, kTagClockPing, msg, deadline);
      if (wait != Mailbox::Wait::kOk) break;
      const std::span<const std::byte> b = msg.payload.bytes();
      if (!b.empty() && std::to_integer<int>(b[0]) == 1) {
        ++done;
        continue;
      }
      world_.route(
          0, msg.src,
          make_control(0, kTagClockPong,
                       Payload::own(std::vector<std::int64_t>{t.now_ns()})));
    }
  } catch (const RankAbortedError&) {
    // The run is aborting; the job body will observe it.
  }
}

void TelemetryChannel::start() {
  if (!active_) return;
  if (rank_ == 0) {
    worker_ = std::thread([this] { drainer_main(); });
  } else if (obs::enabled()) {
    worker_ = std::thread([this] { forwarder_main(); });
  }
}

void TelemetryChannel::forwarder_main() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, interval_, [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    const bool ok = send_frame(/*final_frame=*/false);
    lock.lock();
    if (!ok) break;  // wire gone (abort); flush()/cancel() joins us
  }
}

void TelemetryChannel::drainer_main() {
  // The rank thread is the mailbox's single cv waiter, so the drainer may
  // only try_pop — never a blocking pop.
  for (;;) {
    Message msg;
    if (world_.mailbox(0).try_pop(kAnySource, kTagTelemetry, msg)) {
      ingest(msg);
      continue;
    }
    {
      std::unique_lock lock(mu_);
      if (stop_) break;
      cv_.wait_for(lock, std::chrono::milliseconds(2),
                   [this] { return stop_; });
      if (stop_) break;
    }
  }
  // Post-stop sweep: frames that landed between the last poll and the
  // stop flag still count (drain() waits on finals_ before stopping, but
  // an abort-path cancel() can leave stragglers).
  Message msg;
  while (world_.mailbox(0).try_pop(kAnySource, kTagTelemetry, msg)) {
    ingest(msg);
  }
}

bool TelemetryChannel::send_frame(bool final_frame) {
  std::uint64_t seq;
  {
    std::lock_guard lock(mu_);
    seq = ++seq_;
  }
  std::string frame = obs::make_telemetry_frame(
      rank_, seq, final_frame, clock_, obs::registry(), obs::tracer());
  try {
    world_.route(rank_, 0,
                 make_control(rank_, kTagTelemetry,
                              Payload::own(std::vector<char>(frame.begin(),
                                                             frame.end()))));
    return true;
  } catch (const RankAbortedError&) {
    return false;
  }
}

void TelemetryChannel::ingest(const Message& msg) {
  const std::span<const std::byte> b = msg.payload.bytes();
  const std::string_view frame(reinterpret_cast<const char*>(b.data()),
                               b.size());
  obs::TelemetryHub::Ingest result;
  try {
    result = obs::hub().ingest_frame(frame);
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::kWarn, "telemetry.bad_frame")
        .field("src", msg.src)
        .field("error", e.what());
    return;
  }
  if (result.final_frame && result.process >= 0 && result.process < np_) {
    std::lock_guard lock(mu_);
    auto slot = final_seen_.begin() + result.process;
    if (!*slot) {
      *slot = true;
      ++finals_;
      cv_.notify_all();
    }
  }
}

void TelemetryChannel::flush() {
  if (!active_ || rank_ == 0) return;
  stop_worker();
  // The final frame always goes out — rank 0 counts finals to bound its
  // drain, and the last snapshot is the one worth keeping anyway.
  send_frame(/*final_frame=*/true);
}

void TelemetryChannel::drain() {
  if (!active_ || rank_ != 0) return;
  {
    std::unique_lock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + kDrainTimeout;
    cv_.wait_until(lock, deadline,
                   [this] { return stop_ || finals_ >= np_ - 1; });
  }
  stop_worker();
}

void TelemetryChannel::cancel() { stop_worker(); }

void TelemetryChannel::stop_worker() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

}  // namespace parda::comm::detail
