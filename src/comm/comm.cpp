#include "comm/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/timer.hpp"

namespace parda::comm {

namespace detail {

void Mailbox::push(Message msg) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock lock(mu_);
  while (true) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (match(*it, src, tag)) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::try_pop(int src, int tag, Message& out) {
  std::lock_guard lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (match(*it, src, tag)) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

World::World(int np) {
  PARDA_CHECK(np >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(np));
  for (int i = 0; i < np; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::barrier() {
  std::unique_lock lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != my_generation; });
}

}  // namespace detail

std::vector<std::uint64_t> Comm::reduce_sum_u64(
    std::span<const std::uint64_t> mine, int root, int tag) {
  // Binomial-tree reduction in rank space relative to root, like a real
  // MPI_Reduce: log2(np) rounds, each rank sends once.
  const int np = size();
  const int me = (rank_ - root + np) % np;  // virtual rank, root at 0
  std::vector<std::uint64_t> acc(mine.begin(), mine.end());
  for (int step = 1; step < np; step <<= 1) {
    if ((me & step) != 0) {
      const int dest = ((me - step) + root) % np;
      send(dest, tag, std::span<const std::uint64_t>(acc));
      return {};
    }
    if (me + step < np) {
      const int src = (me + step + root) % np;
      std::vector<std::uint64_t> incoming = recv<std::uint64_t>(src, tag);
      if (incoming.size() > acc.size()) acc.resize(incoming.size(), 0);
      for (std::size_t i = 0; i < incoming.size(); ++i) acc[i] += incoming[i];
    }
  }
  return acc;
}

std::vector<std::uint64_t> Comm::allreduce_sum_u64(
    std::span<const std::uint64_t> mine, int tag) {
  std::vector<std::uint64_t> total = reduce_sum_u64(mine, 0, tag);
  return broadcast(std::move(total), 0, tag);
}

RunStats run(int np, const std::function<void(Comm&)>& fn) {
  detail::World world(np);
  RunStats stats;
  stats.ranks.resize(static_cast<std::size_t>(np));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(np));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(np));

  WallTimer wall;
  for (int r = 0; r < np; ++r) {
    threads.emplace_back([&, r] {
      RankStats& rank_stats = stats.ranks[static_cast<std::size_t>(r)];
      Comm comm(world, r, rank_stats);
      ThreadCpuTimer cpu;
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      rank_stats.busy_seconds = cpu.seconds();
    });
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds = wall.seconds();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return stats;
}

double RunStats::max_busy() const noexcept {
  double m = 0.0;
  for (const RankStats& r : ranks) m = std::max(m, r.busy_seconds);
  return m;
}

double RunStats::total_busy() const noexcept {
  double s = 0.0;
  for (const RankStats& r : ranks) s += r.busy_seconds;
  return s;
}

std::uint64_t RunStats::total_bytes() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_sent;
  return s;
}

std::uint64_t RunStats::total_messages() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.messages_sent;
  return s;
}

}  // namespace parda::comm
