#include "comm/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/timer.hpp"

namespace parda::comm {

namespace detail {

Mailbox::Mailbox(int sources) {
  PARDA_CHECK(sources >= 1);
  buckets_.resize(static_cast<std::size_t>(sources));
}

void Mailbox::push(Message msg) {
  PARDA_CHECK(msg.src >= 0 &&
              msg.src < static_cast<int>(buckets_.size()));
  {
    std::lock_guard lock(mu_);
    auto& bucket = buckets_[static_cast<std::size_t>(msg.src)];
    bucket.push_back(Stamped{std::move(msg), next_seq_++});
  }
  // Single consumer (the owning rank), so this wakeup is targeted.
  cv_.notify_one();
}

bool Mailbox::take_locked(int src, int tag, Message& out) {
  if (src != kAnySource) {
    auto& bucket = buckets_[static_cast<std::size_t>(src)];
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (tag_matches(it->msg, tag)) {
        out = std::move(it->msg);
        bucket.erase(it);
        return true;
      }
    }
    return false;
  }
  // Wildcard source: the eligible message with the smallest arrival stamp.
  std::deque<Stamped>* best_bucket = nullptr;
  std::deque<Stamped>::iterator best;
  for (auto& bucket : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (!tag_matches(it->msg, tag)) continue;
      if (best_bucket == nullptr || it->seq < best->seq) {
        best_bucket = &bucket;
        best = it;
      }
      break;  // within a bucket, the first tag match is the oldest
    }
  }
  if (best_bucket == nullptr) return false;
  out = std::move(best->msg);
  best_bucket->erase(best);
  return true;
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock lock(mu_);
  Message msg;
  cv_.wait(lock, [&] { return take_locked(src, tag, msg); });
  return msg;
}

bool Mailbox::try_pop(int src, int tag, Message& out) {
  std::lock_guard lock(mu_);
  return take_locked(src, tag, out);
}

World::World(int np) : np_(np) {
  PARDA_CHECK(np >= 1);
  rounds_ = np > 1 ? std::bit_width(static_cast<unsigned>(np - 1)) : 0;
  mailboxes_.reserve(static_cast<std::size_t>(np));
  barrier_.reserve(static_cast<std::size_t>(np));
  for (int i = 0; i < np; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(np));
    auto peer = std::make_unique<BarrierPeer>();
    peer->signals.assign(static_cast<std::size_t>(rounds_), 0);
    barrier_.push_back(std::move(peer));
  }
}

void World::barrier(int rank) {
  BarrierPeer& me = *barrier_[static_cast<std::size_t>(rank)];
  // generation is only ever written by the owning rank's thread.
  const std::uint64_t gen = ++me.generation;
  for (int k = 0; k < rounds_; ++k) {
    const int partner = (rank + (1 << k)) % np_;
    BarrierPeer& peer = *barrier_[static_cast<std::size_t>(partner)];
    {
      std::lock_guard lock(peer.mu);
      ++peer.signals[static_cast<std::size_t>(k)];
    }
    peer.cv.notify_one();
    std::unique_lock lock(me.mu);
    me.cv.wait(lock, [&] {
      return me.signals[static_cast<std::size_t>(k)] >= gen;
    });
  }
}

}  // namespace detail

std::vector<std::uint64_t> Comm::reduce_sum_u64(
    std::span<const std::uint64_t> mine, int root, int tag) {
  // Binomial-tree reduction in rank space relative to root, like a real
  // MPI_Reduce: log2(np) rounds, each rank sends once (a zero-copy move of
  // its accumulator).
  const int np = size();
  const int me = (rank_ - root + np) % np;  // virtual rank, root at 0
  std::vector<std::uint64_t> acc(mine.begin(), mine.end());
  for (int step = 1; step < np; step <<= 1) {
    if ((me & step) != 0) {
      const int dest = ((me - step) + root) % np;
      send(dest, tag, std::move(acc));
      return {};
    }
    if (me + step < np) {
      const int src = (me + step + root) % np;
      const std::vector<std::uint64_t> incoming = recv<std::uint64_t>(src, tag);
      if (incoming.size() > acc.size()) acc.resize(incoming.size(), 0);
      for (std::size_t i = 0; i < incoming.size(); ++i) acc[i] += incoming[i];
    }
  }
  return acc;
}

std::vector<std::uint64_t> Comm::allreduce_sum_u64(
    std::span<const std::uint64_t> mine, int tag) {
  std::vector<std::uint64_t> total = reduce_sum_u64(mine, 0, tag);
  return broadcast(std::move(total), 0, tag);
}

RunStats run(int np, const std::function<void(Comm&)>& fn) {
  detail::World world(np);
  RunStats stats;
  stats.ranks.resize(static_cast<std::size_t>(np));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(np));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(np));

  WallTimer wall;
  for (int r = 0; r < np; ++r) {
    threads.emplace_back([&, r] {
      RankStats& rank_stats = stats.ranks[static_cast<std::size_t>(r)];
      Comm comm(world, r, rank_stats);
      ThreadCpuTimer cpu;
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      rank_stats.busy_seconds = cpu.seconds();
    });
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds = wall.seconds();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return stats;
}

double RunStats::max_busy() const noexcept {
  double m = 0.0;
  for (const RankStats& r : ranks) m = std::max(m, r.busy_seconds);
  return m;
}

double RunStats::total_busy() const noexcept {
  double s = 0.0;
  for (const RankStats& r : ranks) s += r.busy_seconds;
  return s;
}

std::uint64_t RunStats::total_bytes() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_sent;
  return s;
}

std::uint64_t RunStats::total_messages() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.messages_sent;
  return s;
}

std::uint64_t RunStats::total_bytes_copied() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_copied;
  return s;
}

std::uint64_t RunStats::total_bytes_shared() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_shared;
  return s;
}

}  // namespace parda::comm
