#include "comm/comm.hpp"

#include <algorithm>
#include <exception>

#include "comm/telemetry_channel.hpp"
#include "comm/transport/transport.hpp"
#include "comm/worker_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/runtime.hpp"
#include "util/timer.hpp"

namespace parda::comm {

namespace detail {

CommCounters& comm_counters() {
  // Handles resolved once per process; the registry guarantees they stay
  // valid for its lifetime.
  static CommCounters counters{
      obs::registry().counter("comm.sends"),
      obs::registry().counter("comm.recvs"),
      obs::registry().counter("comm.barriers"),
      obs::registry().counter("comm.collectives"),
      obs::registry().counter("comm.bytes_sent"),
      obs::registry().counter("comm.bytes_copied"),
      obs::registry().counter("comm.bytes_shared"),
      obs::registry().timer("comm.mailbox_wait"),
      obs::registry().timer("comm.barrier_wait"),
  };
  return counters;
}

Mailbox::Mailbox(int sources) {
  PARDA_CHECK(sources >= 1);
  buckets_.resize(static_cast<std::size_t>(sources));
}

void Mailbox::push(Message msg) {
  PARDA_CHECK(msg.src >= 0 &&
              msg.src < static_cast<int>(buckets_.size()));
  {
    std::lock_guard lock(mu_);
    auto& bucket = buckets_[static_cast<std::size_t>(msg.src)];
    bucket.push_back(Stamped{std::move(msg), next_seq_++});
  }
  // Single consumer (the owning rank), so this wakeup is targeted.
  cv_.notify_one();
}

bool Mailbox::take_locked(int src, int tag, Message& out) {
  if (src != kAnySource) {
    auto& bucket = buckets_[static_cast<std::size_t>(src)];
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (tag_matches(it->msg, tag)) {
        out = std::move(it->msg);
        bucket.erase(it);
        return true;
      }
    }
    return false;
  }
  // Wildcard source: the eligible message with the smallest arrival stamp.
  std::deque<Stamped>* best_bucket = nullptr;
  std::deque<Stamped>::iterator best;
  for (auto& bucket : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (!tag_matches(it->msg, tag)) continue;
      if (best_bucket == nullptr || it->seq < best->seq) {
        best_bucket = &bucket;
        best = it;
      }
      break;  // within a bucket, the first tag match is the oldest
    }
  }
  if (best_bucket == nullptr) return false;
  out = std::move(best->msg);
  best_bucket->erase(best);
  return true;
}

Mailbox::Wait Mailbox::pop(int src, int tag, Message& out,
                           const OpDeadline& deadline) {
  std::unique_lock lock(mu_);
  bool matched = false;
  const auto ready = [&] {
    return poisoned_ || (matched = take_locked(src, tag, out));
  };
  if (deadline.has_value()) {
    if (!cv_.wait_until(lock, *deadline, ready)) return Wait::kTimeout;
  } else {
    cv_.wait(lock, ready);
  }
  // Poisoning beats draining: once the run is aborted, deterministic
  // teardown matters more than delivering whatever is still queued.
  if (poisoned_) return Wait::kPoisoned;
  PARDA_CHECK(matched);
  return Wait::kOk;
}

bool Mailbox::try_pop(int src, int tag, Message& out) {
  std::lock_guard lock(mu_);
  return take_locked(src, tag, out);
}

void Mailbox::poison() {
  {
    std::lock_guard lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void Mailbox::reset() {
  std::lock_guard lock(mu_);
  for (auto& bucket : buckets_) bucket.clear();
  next_seq_ = 0;
  poisoned_ = false;
}

std::size_t Mailbox::depth() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

std::uint64_t Mailbox::delivered() const {
  std::lock_guard lock(mu_);
  return next_seq_;
}

World::World(int np) : np_(np) { init(np); }

World::World(int np, const TransportSpec& spec) : np_(np), spec_(spec) {
  spec_.validate(np);
  init(np);
  // The transport is built after the mailboxes exist (its pumps deliver
  // into them) and started last, when the World is fully formed.
  transport_ = make_transport(spec_, *this, np);
  if (transport_ != nullptr) transport_->start();
}

World::~World() {
  if (transport_ != nullptr) transport_->stop();
}

void World::init(int np) {
  PARDA_CHECK(np >= 1);
  rounds_ = np > 1 ? std::bit_width(static_cast<unsigned>(np - 1)) : 0;
  mailboxes_.reserve(static_cast<std::size_t>(np));
  barrier_.reserve(static_cast<std::size_t>(np));
  boards_.reserve(static_cast<std::size_t>(np));
  for (int i = 0; i < np; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(np));
    auto peer = std::make_unique<BarrierPeer>();
    peer->signals.assign(static_cast<std::size_t>(rounds_), 0);
    barrier_.push_back(std::move(peer));
    boards_.push_back(std::make_unique<RankBoard>());
  }
}

void World::route(int src, int dst, Message&& msg) {
  // Self-sends stay local on every transport: a rank's message to itself
  // has no wire to cross, and pushing it through the serializer would only
  // manufacture a copy (and an SPSC self-deadlock on a full ring).
  if (transport_ == nullptr || src == dst) {
    mailbox(dst).push(std::move(msg));
    return;
  }
  transport_->post(src, dst, std::move(msg));
}

void World::barrier(int rank, const OpDeadline& deadline) {
  if (transport_ != nullptr) {
    message_barrier(rank, deadline);
    return;
  }
  BarrierPeer& me = *barrier_[static_cast<std::size_t>(rank)];
  // generation is only ever written by the owning rank's thread.
  const std::uint64_t gen = ++me.generation;
  for (int k = 0; k < rounds_; ++k) {
    const int partner = (rank + (1 << k)) % np_;
    BarrierPeer& peer = *barrier_[static_cast<std::size_t>(partner)];
    {
      std::lock_guard lock(peer.mu);
      ++peer.signals[static_cast<std::size_t>(k)];
    }
    peer.cv.notify_one();
    std::unique_lock lock(me.mu);
    const auto ready = [&] {
      return me.poisoned ||
             me.signals[static_cast<std::size_t>(k)] >= gen;
    };
    if (deadline.has_value()) {
      if (!me.cv.wait_until(lock, *deadline, ready)) {
        throw DeadlineExceededError(
            "barrier deadline exceeded at rank " + std::to_string(rank) +
            " (round " + std::to_string(k) + " of " +
            std::to_string(rounds_) + ")");
      }
    } else {
      me.cv.wait(lock, ready);
    }
    if (me.poisoned) {
      lock.unlock();
      throw_aborted();
    }
  }
}

void World::message_barrier(int rank, const OpDeadline& deadline) {
  // The same dissemination schedule as the cv barrier, but each round-k
  // signal is a tagged (empty-payload) message on a reserved internal tag,
  // so the synchronization crosses the same wire as data traffic. Tags are
  // per-round and sources are explicit, so overlapping barrier epochs
  // cannot confuse each other: a partner racing ahead just queues its next
  // round-k signal behind the current one (FIFO pop consumes in order).
  for (int k = 0; k < rounds_; ++k) {
    const int step = 1 << k;
    const int to = (rank + step) % np_;
    const int from = (rank - step + np_) % np_;
    Message signal;
    signal.src = rank;
    signal.origin = rank;
    signal.tag = kReservedTagBase + k;
    route(rank, to, std::move(signal));
    Message in;
    const Mailbox::Wait wait =
        mailbox(rank).pop(from, kReservedTagBase + k, in, deadline);
    if (wait == Mailbox::Wait::kPoisoned) throw_aborted();
    if (wait == Mailbox::Wait::kTimeout) {
      throw DeadlineExceededError(
          "barrier deadline exceeded at rank " + std::to_string(rank) +
          " (round " + std::to_string(k) + " of " + std::to_string(rounds_) +
          ")");
    }
  }
}

void World::abort(int origin, const std::string& cause) {
  abort_impl(origin, cause, /*broadcast=*/true);
}

void World::abort_remote(int origin, const std::string& cause) {
  abort_impl(origin, cause, /*broadcast=*/false);
}

void World::abort_impl(int origin, const std::string& cause, bool broadcast) {
  {
    std::lock_guard lock(abort_mu_);
    if (aborted_.load(std::memory_order_relaxed)) return;  // first wins
    abort_origin_ = origin;
    abort_cause_ = cause;
    aborted_.store(true, std::memory_order_release);
  }
  obs::log(obs::LogLevel::kWarn, "comm.abort")
      .field("origin", origin)
      .field("cause", cause);
  // The abort-origin log line above is in the tail ring by now, so the
  // flight recorder's log_tail names the origin even when the dump path
  // was configured lazily via the environment.
  obs::flightrec_note("abort.origin", std::to_string(origin));
  obs::flightrec_note("abort.cause", cause);
  obs::flightrec_note("transport", spec_.describe());
  obs::flightrec_note("world.generation", std::to_string(generation_));
  obs::flightrec_dump("comm.abort: " + cause);
  for (auto& mailbox : mailboxes_) mailbox->poison();
  for (auto& peer : barrier_) {
    {
      std::lock_guard lock(peer->mu);
      peer->poisoned = true;
    }
    peer->cv.notify_all();
  }
  // Local teardown first, then tell the remote ranks (no-op for
  // in-process transports). A frame that arrives back carrying this abort
  // hits the first-wins check above and is ignored.
  if (broadcast && transport_ != nullptr) {
    transport_->broadcast_abort(origin, cause);
  }
}

void World::reset() {
  // Called between jobs by the pool's admitted submitter; every rank
  // thread of the previous job has unwound (the submitter observed the
  // job's completion with acquire ordering), so plain stores suffice —
  // the next job's workers see them through the job-publication release/
  // acquire pair.
  const bool was_aborted = aborted_.load(std::memory_order_relaxed);
  // Pumps must quiesce before the mailboxes drain (they deliver into
  // them), and the generation must bump before they restart so stale
  // frames of the previous job are dropped, not delivered.
  if (transport_ != nullptr) transport_->stop();
  ++generation_;
  for (auto& mailbox : mailboxes_) mailbox->reset();
  for (auto& peer : barrier_) {
    std::lock_guard lock(peer->mu);
    peer->signals.assign(static_cast<std::size_t>(rounds_), 0);
    peer->generation = 0;
    peer->poisoned = false;
  }
  for (auto& board : boards_) {
    board->op.store(0, std::memory_order_relaxed);
    board->peer.store(kAnySource, std::memory_order_relaxed);
    board->tag.store(kAnyTag, std::memory_order_relaxed);
    board->epoch.store(0, std::memory_order_relaxed);
    board->done.store(false, std::memory_order_relaxed);
    board->messages_sent.store(0, std::memory_order_relaxed);
    board->bytes_sent.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(abort_mu_);
    abort_origin_ = 0;
    abort_cause_.clear();
    aborted_.store(false, std::memory_order_release);
  }
  if (transport_ != nullptr) {
    transport_->clear(was_aborted);
    transport_->start();
  }
}

void World::throw_aborted() const {
  int origin;
  std::string cause;
  {
    std::lock_guard lock(abort_mu_);
    origin = abort_origin_;
    cause = abort_cause_;
  }
  throw RankAbortedError(origin, cause);
}

std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

std::string World::stall_report() {
  std::string report =
      "comm stall detected: every rank is blocked with no progress\n";
  for (int r = 0; r < np_; ++r) {
    const RankBoard& b = *boards_[static_cast<std::size_t>(r)];
    const int op = b.op.load(std::memory_order_acquire);
    char line[256];
    if (b.done.load(std::memory_order_relaxed)) {
      std::snprintf(line, sizeof(line), "  rank %d: exited", r);
    } else if (op == 0) {
      std::snprintf(line, sizeof(line), "  rank %d: running", r);
    } else {
      std::snprintf(line, sizeof(line), "  rank %d: blocked in %s (peer=%d, tag=%d)",
                    r, fault_op_name(static_cast<FaultOp>(op - 1)),
                    b.peer.load(std::memory_order_relaxed),
                    b.tag.load(std::memory_order_relaxed));
    }
    const Mailbox& mb = *mailboxes_[static_cast<std::size_t>(r)];
    char tail[192];
    std::snprintf(tail, sizeof(tail),
                  " | mailbox: %zu queued, %llu delivered | sent %llu msgs, "
                  "%llu bytes\n",
                  mb.depth(),
                  static_cast<unsigned long long>(mb.delivered()),
                  static_cast<unsigned long long>(
                      b.messages_sent.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(
                      b.bytes_sent.load(std::memory_order_relaxed)));
    report += line;
    report += tail;
  }
  return report;
}

}  // namespace detail

void Comm::apply_fault(const FaultPoint& pt) {
  obs::log(obs::LogLevel::kInfo, "fault.inject")
      .field("rank", rank_)
      .field("op", fault_op_name(pt.op))
      .field("action",
             pt.action == FaultPoint::Action::kDelay ? "delay" : "throw")
      .field("ms", pt.delay_ms);
  if (pt.action == FaultPoint::Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(pt.delay_ms));
    return;
  }
  throw FaultInjectedError("injected fault at rank " + std::to_string(rank_) +
                           " (" + pt.describe() + ")");
}

std::vector<std::uint64_t> Comm::reduce_sum_u64(
    std::span<const std::uint64_t> mine, int root, int tag) {
  // Binomial-tree reduction in rank space relative to root, like a real
  // MPI_Reduce: log2(np) rounds, each rank sends once (a zero-copy move of
  // its accumulator).
  note_collective();
  const int np = size();
  const int me = (rank_ - root + np) % np;  // virtual rank, root at 0
  std::vector<std::uint64_t> acc(mine.begin(), mine.end());
  for (int step = 1; step < np; step <<= 1) {
    if ((me & step) != 0) {
      const int dest = ((me - step) + root) % np;
      send(dest, tag, std::move(acc));
      return {};
    }
    if (me + step < np) {
      const int src = (me + step + root) % np;
      const std::vector<std::uint64_t> incoming = recv<std::uint64_t>(src, tag);
      if (incoming.size() > acc.size()) acc.resize(incoming.size(), 0);
      for (std::size_t i = 0; i < incoming.size(); ++i) acc[i] += incoming[i];
    }
  }
  return acc;
}

std::vector<std::uint64_t> Comm::allreduce_sum_u64(
    std::span<const std::uint64_t> mine, int tag) {
  std::vector<std::uint64_t> total = reduce_sum_u64(mine, 0, tag);
  return broadcast(std::move(total), 0, tag);
}

namespace detail {

RunStats run_distributed(int np, const std::function<void(Comm&)>& fn,
                         const RunOptions& options) {
  const TransportSpec& spec = options.transport;
  spec.validate(np);
  PARDA_CHECK_MSG(options.watchdog_interval.count() == 0,
                  "the stall watchdog samples every rank's board in one "
                  "process; it cannot watch a distributed world (rank=%d)",
                  spec.local_rank);
  const int rank = spec.local_rank;
  // Crash dumps from this process are attributed to the rank it hosts.
  obs::flightrec_set_process(rank);
  World world(np, spec);
  RunStats stats;
  stats.ranks.resize(static_cast<std::size_t>(np));
  std::exception_ptr error;
  WallTimer wall;
  {
    obs::ScopedThreadRank obs_rank(rank);
    RankStats& rank_stats = stats.ranks[static_cast<std::size_t>(rank)];
    Comm comm(world, rank, rank_stats, options.fault_plan,
              options.op_timeout);
    TelemetryChannel telemetry(world, rank);
    ThreadCpuTimer cpu;
    try {
      telemetry.clock_handshake();
      telemetry.start();
      fn(comm);
      // Remote ranks flush their final telemetry frame BEFORE the
      // completion barrier (per-pair FIFO keeps it ahead of teardown)...
      telemetry.flush();
      // Implicit completion barrier: no process tears its transport down
      // while a sibling may still need the wire. A peer that aborted
      // instead of arriving poisons this wait, which is the error path
      // below.
      world.barrier(rank);
      // ... and rank 0 collects the stragglers after it, bounded.
      telemetry.drain();
    } catch (...) {
      error = std::current_exception();
      telemetry.cancel();
      world.abort(rank, describe_exception(error));
    }
    world.board(rank).done.store(true, std::memory_order_release);
    rank_stats.busy_seconds = cpu.seconds();
  }
  stats.wall_seconds = wall.seconds();
  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace detail

RunStats run(int np, const std::function<void(Comm&)>& fn,
             const RunOptions& options) {
  if (options.transport.distributed()) {
    // One rank per process: fn runs inline on the calling thread; the
    // worker pool has nothing to schedule.
    return detail::run_distributed(np, fn, options);
  }
  // Transient runtime: spawn, run one job, join — the historical contract.
  // Long-lived callers hold a WorkerPool (or a core PardaRuntime) instead.
  WorkerPool pool(np);
  return pool.run_job(np, fn, options);
}

RunStats run(int np, const std::function<void(Comm&)>& fn) {
  return run(np, fn, RunOptions{});
}

double RunStats::max_busy() const noexcept {
  double m = 0.0;
  for (const RankStats& r : ranks) m = std::max(m, r.busy_seconds);
  return m;
}

double RunStats::total_busy() const noexcept {
  double s = 0.0;
  for (const RankStats& r : ranks) s += r.busy_seconds;
  return s;
}

std::uint64_t RunStats::total_bytes() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_sent;
  return s;
}

std::uint64_t RunStats::total_messages() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.messages_sent;
  return s;
}

std::uint64_t RunStats::total_bytes_copied() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_copied;
  return s;
}

std::uint64_t RunStats::total_bytes_shared() const noexcept {
  std::uint64_t s = 0;
  for (const RankStats& r : ranks) s += r.bytes_shared;
  return s;
}

}  // namespace parda::comm
