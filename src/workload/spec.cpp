#include "workload/spec.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/check.hpp"
#include "workload/generators.hpp"

namespace parda {

namespace {

// Table IV of the paper, verbatim.
constexpr std::array<SpecProfile, 15> kProfiles{{
    {"perlbench", 23'857'981, 11'194'845'654, 5.93, 106.43, 180.71, 7624.85,
     243.42},
    {"bzip2", 11'425'324, 8'311'245'775, 5.41, 59.13, 86.88, 6939.13, 180.91},
    {"gcc", 4'530'518, 1'328'074'710, 1.34, 25.99, 30.53, 475.50, 67.25},
    {"mcf", 55'675'001, 9'552'209'709, 19.49, 85.09, 153.69, 5898.61, 268.29},
    {"milc", 12'081'037, 13'232'307'302, 17.11, 105.44, 185.09, 9746.86,
     365.60},
    {"namd", 7'204'133, 22'067'031'445, 15.87, 152.11, 282.85, 7936.16,
     431.55},
    {"gobmk", 3'758'950, 7'149'796'931, 6.83, 80.65, 108.50, 2798.21, 186.21},
    {"dealII", 31'386'407, 66'801'413'934, 39.59, 522.24, 674.06, 20542.37,
     1250.43},
    {"soplex", 18'858'173, 3'432'521'697, 3.87, 32.25, 52.24, 187.19, 102.59},
    {"povray", 616'821, 15'871'518'510, 12.69, 133.96, 238.53, 7503.35,
     307.91},
    {"calculix", 10'366'947, 2'511'568'698, 2.18, 24.45, 42.18, 1771.96,
     78.74},
    {"libquantum", 570'074, 1'700'539'806, 2.43, 13.56, 26.93, 715.78, 58.81},
    {"lbm", 53'628'988, 48'739'982'166, 43.47, 339.75, 674.09, 26858.27,
     1211.35},
    {"astar", 48'641'983, 54'587'054'078, 59.29, 468.92, 776.14, 23275.32,
     1107.70},
    {"sphinx3", 8'625'694, 12'284'649'018, 12.24, 91.44, 174.105, 15331.22,
     290.51},
}};

std::unique_ptr<Workload> mix(std::vector<std::unique_ptr<Workload>> children,
                              std::vector<double> weights,
                              std::uint64_t seed) {
  return std::make_unique<MixWorkload>(std::move(children), std::move(weights),
                                       seed);
}

std::uint64_t at_least(std::uint64_t v, std::uint64_t floor) {
  return v < floor ? floor : v;
}

}  // namespace

std::span<const SpecProfile> spec_profiles() { return kProfiles; }

const SpecProfile* find_spec_profile(std::string_view name) noexcept {
  for (const SpecProfile& p : kProfiles) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const SpecProfile& spec_profile(std::string_view name) {
  if (const SpecProfile* p = find_spec_profile(name)) return *p;
  std::fprintf(stderr, "unknown SPEC profile: %.*s\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

std::unique_ptr<Workload> make_spec_workload(const SpecProfile& profile,
                                             std::uint64_t scale,
                                             std::uint64_t seed) {
  const std::uint64_t m = at_least(profile.scaled_m(scale), 64);
  std::vector<std::unique_ptr<Workload>> kids;
  std::vector<double> w;

  const std::string_view n = profile.name;
  if (n == "perlbench") {
    // Interpreter: hot dispatch structures plus a wide heap.
    kids.push_back(std::make_unique<ZipfWorkload>(m * 7 / 10, 0.9, seed, 0));
    kids.push_back(std::make_unique<SequentialWorkload>(m * 3 / 10, 1));
    w = {0.7, 0.3};
  } else if (n == "bzip2") {
    // Block compressor: sliding windows with sorted-suffix randomness.
    kids.push_back(std::make_unique<StridedWorkload>(m / 2, 64, 0));
    kids.push_back(
        std::make_unique<UniformRandomWorkload>(m / 2, seed + 1, 1));
    w = {0.5, 0.5};
  } else if (n == "gcc") {
    // Compiler: alternating pass behaviour (also feeds phase detection).
    std::vector<std::unique_ptr<Workload>> phases;
    phases.push_back(std::make_unique<ZipfWorkload>(m / 2, 0.9, seed, 0));
    phases.push_back(std::make_unique<SequentialWorkload>(m / 4, 1));
    phases.push_back(
        std::make_unique<PointerChaseWorkload>(at_least(m / 4, 64), seed + 2,
                                               2));
    return std::make_unique<PhasedWorkload>(std::move(phases),
                                            at_least(m / 4, 4096));
  } else if (n == "mcf") {
    // Network simplex: pointer chasing over a huge arc/node graph.
    kids.push_back(std::make_unique<PointerChaseWorkload>(
        at_least(m * 9 / 10, 64), seed, 0));
    kids.push_back(std::make_unique<ZipfWorkload>(
        at_least(m / 10, 64), 1.0, seed + 1, 1));
    w = {0.8, 0.2};
  } else if (n == "milc") {
    // Lattice QCD: strided sweeps over large field arrays.
    kids.push_back(std::make_unique<StridedWorkload>(m * 8 / 10, 16, 0));
    kids.push_back(std::make_unique<SequentialWorkload>(m * 2 / 10, 1));
    w = {0.75, 0.25};
  } else if (n == "namd") {
    // Molecular dynamics: structured neighbour sweeps + hot parameters.
    const auto side = at_least(
        static_cast<std::uint64_t>(std::sqrt(static_cast<double>(m) / 2.0)),
        8);
    kids.push_back(std::make_unique<StencilWorkload>(side, side, 0));
    kids.push_back(std::make_unique<ZipfWorkload>(
        at_least(m / 8, 64), 1.0, seed + 1, 1));
    w = {0.8, 0.2};
  } else if (n == "gobmk") {
    // Game tree search: skewed board/hash accesses.
    kids.push_back(std::make_unique<ZipfWorkload>(m, 0.8, seed, 0));
    kids.push_back(
        std::make_unique<UniformRandomWorkload>(at_least(m / 4, 64),
                                                seed + 1, 1));
    w = {0.7, 0.3};
  } else if (n == "dealII") {
    // FEM: dense linear algebra kernels + large mesh traversal.
    const auto dim = at_least(
        static_cast<std::uint64_t>(
            std::sqrt(static_cast<double>(m) * 0.6 / 3.0)),
        8);
    kids.push_back(std::make_unique<MatrixMultiplyWorkload>(dim, 16, 0));
    kids.push_back(std::make_unique<ZipfWorkload>(
        at_least(m * 4 / 10, 64), 0.7, seed + 1, 1));
    w = {0.6, 0.4};
  } else if (n == "soplex") {
    // Simplex LP: column/row strided sweeps over the tableau.
    kids.push_back(std::make_unique<StridedWorkload>(m * 7 / 10, 8, 0));
    kids.push_back(
        std::make_unique<UniformRandomWorkload>(at_least(m * 3 / 10, 64),
                                                seed + 1, 1));
    w = {0.7, 0.3};
  } else if (n == "povray") {
    // Ray tracer: tiny hot footprint, heavy reuse.
    return std::make_unique<ZipfWorkload>(m, 1.1, seed, 0);
  } else if (n == "calculix") {
    const auto dim = at_least(
        static_cast<std::uint64_t>(
            std::sqrt(static_cast<double>(m) / 2.0 / 3.0)),
        8);
    kids.push_back(std::make_unique<MatrixMultiplyWorkload>(dim, 0, 0));
    kids.push_back(std::make_unique<StridedWorkload>(m / 2, 4, 1));
    w = {0.6, 0.4};
  } else if (n == "libquantum") {
    // Quantum register simulation: pure streaming over one vector.
    return std::make_unique<SequentialWorkload>(m, 0);
  } else if (n == "lbm") {
    // Lattice Boltzmann: streaming over a huge grid.
    kids.push_back(std::make_unique<SequentialWorkload>(m * 95 / 100, 0));
    kids.push_back(
        std::make_unique<UniformRandomWorkload>(at_least(m / 20, 64),
                                                seed + 1, 1));
    w = {0.9, 0.1};
  } else if (n == "astar") {
    // Path finding: pointer-heavy open/closed lists over a big map.
    kids.push_back(std::make_unique<PointerChaseWorkload>(
        at_least(m * 7 / 10, 64), seed, 0));
    kids.push_back(std::make_unique<ZipfWorkload>(
        at_least(m * 3 / 10, 64), 0.9, seed + 1, 1));
    w = {0.7, 0.3};
  } else if (n == "sphinx3") {
    // Speech recognition: skewed acoustic model + linear feature scans.
    kids.push_back(std::make_unique<ZipfWorkload>(m * 6 / 10, 0.8, seed, 0));
    kids.push_back(std::make_unique<SequentialWorkload>(m * 4 / 10, 1));
    w = {0.6, 0.4};
  } else {
    PARDA_CHECK(false && "unhandled SPEC profile");
  }
  return mix(std::move(kids), std::move(w), seed + 17);
}

std::unique_ptr<Workload> make_spec_workload(std::string_view name,
                                             std::uint64_t scale,
                                             std::uint64_t seed) {
  return make_spec_workload(spec_profile(name), scale, seed);
}

}  // namespace parda
