#include "workload/generators.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace parda {

std::vector<Addr> generate_trace(Workload& workload, std::size_t n) {
  std::vector<Addr> trace(n);
  workload.fill(trace);
  return trace;
}

std::vector<Addr> take_trace(Workload& workload, std::size_t n) {
  workload.reset();
  return generate_trace(workload, n);
}

Addr region_base(std::uint32_t region) noexcept {
  return static_cast<Addr>(region) << 40;
}

// --- SequentialWorkload ----------------------------------------------------

SequentialWorkload::SequentialWorkload(std::uint64_t footprint,
                                       std::uint32_t region)
    : footprint_(footprint), base_(region_base(region)) {
  PARDA_CHECK(footprint >= 1);
}

void SequentialWorkload::fill(std::span<Addr> out) {
  for (Addr& a : out) {
    a = base_ + pos_;
    pos_ = pos_ + 1 == footprint_ ? 0 : pos_ + 1;
  }
}

std::string SequentialWorkload::name() const {
  return "seq(m=" + std::to_string(footprint_) + ")";
}

// --- StridedWorkload --------------------------------------------------------

StridedWorkload::StridedWorkload(std::uint64_t footprint, std::uint64_t stride,
                                 std::uint32_t region)
    : footprint_(footprint), stride_(stride), base_(region_base(region)) {
  PARDA_CHECK(footprint >= 1);
  PARDA_CHECK(stride >= 1);
}

void StridedWorkload::fill(std::span<Addr> out) {
  // Walk positions 0, s, 2s, ... mod footprint; a full walk touches every
  // residue class because we offset by pos_/ceil(footprint/stride) lapping.
  for (Addr& a : out) {
    const std::uint64_t idx =
        (pos_ * stride_ + pos_ / footprint_) % footprint_;
    a = base_ + idx;
    ++pos_;
  }
}

std::string StridedWorkload::name() const {
  return "strided(m=" + std::to_string(footprint_) +
         ",s=" + std::to_string(stride_) + ")";
}

// --- UniformRandomWorkload ---------------------------------------------------

UniformRandomWorkload::UniformRandomWorkload(std::uint64_t footprint,
                                             std::uint64_t seed,
                                             std::uint32_t region)
    : footprint_(footprint),
      seed_(seed),
      base_(region_base(region)),
      rng_(seed) {
  PARDA_CHECK(footprint >= 1);
}

void UniformRandomWorkload::fill(std::span<Addr> out) {
  for (Addr& a : out) a = base_ + rng_.below(footprint_);
}

std::string UniformRandomWorkload::name() const {
  return "uniform(m=" + std::to_string(footprint_) + ")";
}

// --- ZipfWorkload ------------------------------------------------------------

ZipfWorkload::ZipfWorkload(std::uint64_t footprint, double alpha,
                           std::uint64_t seed, std::uint32_t region)
    : footprint_(footprint),
      seed_(seed),
      base_(region_base(region)),
      sampler_(footprint, alpha),
      rng_(seed) {}

void ZipfWorkload::fill(std::span<Addr> out) {
  // Reuse distance is invariant under address renaming, so ranks map to
  // addresses directly: rank 0 (the hottest element) lives at base_.
  for (Addr& a : out) a = base_ + sampler_(rng_);
}

std::string ZipfWorkload::name() const {
  return "zipf(m=" + std::to_string(footprint_) +
         ",a=" + std::to_string(sampler_.alpha()) + ")";
}

// --- PointerChaseWorkload -----------------------------------------------------

PointerChaseWorkload::PointerChaseWorkload(std::uint64_t nodes,
                                           std::uint64_t seed,
                                           std::uint32_t region)
    : base_(region_base(region)), seed_(seed) {
  PARDA_CHECK(nodes >= 1);
  PARDA_CHECK(nodes <= 0xFFFFFFFFull);
  Xoshiro256 rng(seed);
  const std::vector<std::uint64_t> perm = random_permutation(nodes, rng);
  // Build one Hamiltonian cycle: perm[i] -> perm[i+1].
  next_.resize(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    next_[perm[i]] =
        static_cast<std::uint32_t>(perm[(i + 1) % nodes]);
  }
}

void PointerChaseWorkload::fill(std::span<Addr> out) {
  for (Addr& a : out) {
    a = base_ + cursor_;
    cursor_ = next_[cursor_];
  }
}

std::string PointerChaseWorkload::name() const {
  return "ptrchase(m=" + std::to_string(next_.size()) + ")";
}

// --- MatrixMultiplyWorkload ----------------------------------------------------

MatrixMultiplyWorkload::MatrixMultiplyWorkload(std::uint64_t n,
                                               std::uint64_t tile,
                                               std::uint32_t region)
    : n_(n), tile_(tile), base_(region_base(region)) {
  PARDA_CHECK(n >= 1);
  refill_pass();
}

void MatrixMultiplyWorkload::refill_pass() {
  pass_.clear();
  const Addr a0 = base_;
  const Addr b0 = base_ + n_ * n_;
  const Addr c0 = base_ + 2 * n_ * n_;
  const std::uint64_t tile = tile_ == 0 ? n_ : tile_;
  for (std::uint64_t ii = 0; ii < n_; ii += tile) {
    for (std::uint64_t kk = 0; kk < n_; kk += tile) {
      for (std::uint64_t jj = 0; jj < n_; jj += tile) {
        for (std::uint64_t i = ii; i < std::min(ii + tile, n_); ++i) {
          for (std::uint64_t k = kk; k < std::min(kk + tile, n_); ++k) {
            pass_.push_back(a0 + i * n_ + k);  // A[i][k]
            for (std::uint64_t j = jj; j < std::min(jj + tile, n_); ++j) {
              pass_.push_back(b0 + k * n_ + j);  // B[k][j]
              pass_.push_back(c0 + i * n_ + j);  // C[i][j]
            }
          }
        }
      }
    }
  }
}

void MatrixMultiplyWorkload::fill(std::span<Addr> out) {
  for (Addr& a : out) {
    a = pass_[pos_];
    pos_ = pos_ + 1 == pass_.size() ? 0 : pos_ + 1;
  }
}

void MatrixMultiplyWorkload::reset() { pos_ = 0; }

std::string MatrixMultiplyWorkload::name() const {
  return "matmul(n=" + std::to_string(n_) + ",t=" + std::to_string(tile_) +
         ")";
}

// --- StencilWorkload ------------------------------------------------------------

StencilWorkload::StencilWorkload(std::uint64_t width, std::uint64_t height,
                                 std::uint32_t region)
    : width_(width), height_(height), base_(region_base(region)) {
  PARDA_CHECK(width >= 3);
  PARDA_CHECK(height >= 3);
  queue_pos_ = queue_.size();
}

void StencilWorkload::fill(std::span<Addr> out) {
  const std::uint64_t plane = width_ * height_;
  for (Addr& a : out) {
    if (queue_pos_ >= queue_.size()) {
      // Emit the reads + write for cell (x_, y_): 5-point read from the
      // source plane, one write to the destination plane.
      queue_.clear();
      queue_pos_ = 0;
      const Addr src = base_ + (flip_ ? plane : 0);
      const Addr dst = base_ + (flip_ ? 0 : plane);
      const std::uint64_t x = 1 + x_ % (width_ - 2);
      const std::uint64_t y = 1 + y_ % (height_ - 2);
      queue_.push_back(src + y * width_ + x);
      queue_.push_back(src + y * width_ + x - 1);
      queue_.push_back(src + y * width_ + x + 1);
      queue_.push_back(src + (y - 1) * width_ + x);
      queue_.push_back(src + (y + 1) * width_ + x);
      queue_.push_back(dst + y * width_ + x);
      if (++x_ % (width_ - 2) == 0) {
        x_ = 0;
        if (++y_ % (height_ - 2) == 0) {
          y_ = 0;
          flip_ = !flip_;  // next sweep reads what this one wrote
        }
      }
    }
    a = queue_[queue_pos_++];
  }
}

std::string StencilWorkload::name() const {
  return "stencil(" + std::to_string(width_) + "x" + std::to_string(height_) +
         ")";
}

// --- StackDistWorkload ------------------------------------------------------------

StackDistWorkload::StackDistWorkload(std::vector<std::uint64_t> depths,
                                     std::vector<double> weights,
                                     double miss_weight, std::uint64_t seed,
                                     std::uint32_t region)
    : depths_(std::move(depths)),
      seed_(seed),
      base_(region_base(region)),
      rng_(seed) {
  PARDA_CHECK(depths_.size() == weights.size());
  double total = miss_weight;
  for (double w : weights) total += w;
  PARDA_CHECK(total > 0.0);
  double acc = 0.0;
  cumulative_.reserve(weights.size() + 1);
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.push_back(1.0);  // miss bucket
}

Addr StackDistWorkload::generate_one() {
  const double u = rng_.uniform();
  std::size_t pick = cumulative_.size() - 1;
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) {
      pick = i;
      break;
    }
  }
  Addr chosen;
  if (pick < depths_.size() && depths_[pick] < stack_.size()) {
    // Reuse the element at the prescribed stack depth: its reuse distance
    // is exactly depths_[pick].
    const std::size_t depth = depths_[pick];
    chosen = stack_[depth];
    stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(depth));
  } else {
    chosen = base_ + next_fresh_++;  // a compulsory miss
  }
  stack_.insert(stack_.begin(), chosen);
  return chosen;
}

void StackDistWorkload::fill(std::span<Addr> out) {
  for (Addr& a : out) a = generate_one();
}

void StackDistWorkload::reset() {
  rng_ = Xoshiro256(seed_);
  stack_.clear();
  next_fresh_ = 0;
}

std::string StackDistWorkload::name() const {
  return "stackdist(levels=" + std::to_string(depths_.size()) + ")";
}

// --- MixWorkload ------------------------------------------------------------------

MixWorkload::MixWorkload(std::vector<std::unique_ptr<Workload>> children,
                         std::vector<double> weights, std::uint64_t seed)
    : children_(std::move(children)), seed_(seed), rng_(seed) {
  PARDA_CHECK(!children_.empty());
  PARDA_CHECK(children_.size() == weights.size());
  double total = 0.0;
  for (double w : weights) total += w;
  PARDA_CHECK(total > 0.0);
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
}

void MixWorkload::fill(std::span<Addr> out) {
  for (Addr& a : out) {
    const double u = rng_.uniform();
    std::size_t pick = children_.size() - 1;
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) {
        pick = i;
        break;
      }
    }
    children_[pick]->fill(std::span<Addr>(&a, 1));
  }
}

void MixWorkload::reset() {
  rng_ = Xoshiro256(seed_);
  for (auto& child : children_) child->reset();
}

std::string MixWorkload::name() const {
  std::string out = "mix(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i != 0) out += ",";
    out += children_[i]->name();
  }
  return out + ")";
}

// --- PhasedWorkload ----------------------------------------------------------------

PhasedWorkload::PhasedWorkload(std::vector<std::unique_ptr<Workload>> children,
                               std::uint64_t phase_length)
    : children_(std::move(children)), phase_length_(phase_length) {
  PARDA_CHECK(!children_.empty());
  PARDA_CHECK(phase_length >= 1);
}

void PhasedWorkload::fill(std::span<Addr> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t phase =
        static_cast<std::size_t>((emitted_ / phase_length_) %
                                 children_.size());
    const std::uint64_t left_in_phase =
        phase_length_ - (emitted_ % phase_length_);
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(left_in_phase, out.size() - done));
    children_[phase]->fill(out.subspan(done, take));
    done += take;
    emitted_ += take;
  }
}

void PhasedWorkload::reset() {
  emitted_ = 0;
  for (auto& child : children_) child->reset();
}

std::string PhasedWorkload::name() const {
  return "phased(k=" + std::to_string(children_.size()) +
         ",len=" + std::to_string(phase_length_) + ")";
}

}  // namespace parda
