// Workload spec strings: build any generator from a compact textual
// description, e.g. for trace_tool and scripting.
//
//   "zipf:m=100000,a=0.9"
//   "seq:m=4096"
//   "strided:m=65536,s=16"
//   "uniform:m=10000"
//   "ptrchase:m=50000"
//   "matmul:n=64,t=8"
//   "stencil:w=128,h=128"
//   "stackdist:d=2/10,w=0.6/0.2,miss=0.2"
//   "mix:zipf:m=100,a=1.0|seq:m=50,w=0.7/0.3"     (children '|'-separated)
//   "phased:seq:m=100|uniform:m=500,len=8192"
//   "spec:mcf,scale=8000"                          (Table IV profiles)
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "workload/workload.hpp"

namespace parda {

/// Parses a workload spec; throws std::invalid_argument with a message
/// naming the offending component on malformed input. `seed` seeds all
/// stochastic generators.
std::unique_ptr<Workload> parse_workload(std::string_view spec,
                                         std::uint64_t seed = 1);

/// True if the spec parses (no throw); for CLI validation.
bool workload_spec_valid(std::string_view spec);

}  // namespace parda
