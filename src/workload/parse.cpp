#include "workload/parse.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/generators.hpp"
#include "workload/spec.hpp"

namespace parda {

namespace {

[[noreturn]] void bad(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("workload spec '" + std::string(spec) +
                              "': " + why);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t at = 0;
  while (true) {
    const std::size_t next = s.find(sep, at);
    if (next == std::string_view::npos) {
      parts.push_back(s.substr(at));
      return parts;
    }
    parts.push_back(s.substr(at, next - at));
    at = next + 1;
  }
}

/// key=value arguments after the generator name.
struct Args {
  std::string_view spec;  // for error messages
  std::unordered_map<std::string, std::string> kv;

  bool has(const std::string& key) const { return kv.count(key) != 0; }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback,
                    bool required = false) const {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      if (required) bad(spec, "missing required argument '" + key + "'");
      return fallback;
    }
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0') {
      bad(spec, "argument '" + key + "' is not a number");
    }
    return v;
  }

  double f64(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      bad(spec, "argument '" + key + "' is not a number");
    }
    return v;
  }

  std::vector<double> f64_list(const std::string& key) const {
    std::vector<double> out;
    const auto it = kv.find(key);
    if (it == kv.end()) return out;
    for (std::string_view part : split(it->second, '/')) {
      out.push_back(std::strtod(std::string(part).c_str(), nullptr));
    }
    return out;
  }

  std::vector<std::uint64_t> u64_list(const std::string& key) const {
    std::vector<std::uint64_t> out;
    const auto it = kv.find(key);
    if (it == kv.end()) return out;
    for (std::string_view part : split(it->second, '/')) {
      out.push_back(std::strtoull(std::string(part).c_str(), nullptr, 0));
    }
    return out;
  }
};

Args parse_args(std::string_view spec, std::string_view text) {
  Args args;
  args.spec = spec;
  if (text.empty()) return args;
  for (std::string_view part : split(text, ',')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      bad(spec, "malformed argument '" + std::string(part) +
                    "' (expected key=value)");
    }
    args.kv.emplace(std::string(part.substr(0, eq)),
                    std::string(part.substr(eq + 1)));
  }
  return args;
}

std::unique_ptr<Workload> parse_one(std::string_view spec, std::uint64_t seed,
                                    std::uint32_t region);

/// Splits "mix:child|child|...,w=..." composite bodies: children are
/// '|'-separated specs; trailing top-level args (w=, len=) are the last
/// ','-separated tokens containing '=' but no ':'.
struct CompositeBody {
  std::vector<std::string> children;
  std::string args;  // comma-joined trailing key=value pairs
};

CompositeBody parse_composite(std::string_view body) {
  CompositeBody out;
  for (std::string_view part : split(body, '|')) {
    out.children.emplace_back(part);
  }
  // The final child may carry trailing composite args: strip key=value
  // suffixes that do not belong to a generator (heuristic: tokens after
  // the last ',' chain with keys 'w' or 'len').
  if (!out.children.empty()) {
    std::string& last = out.children.back();
    auto tokens = split(last, ',');
    std::size_t keep = tokens.size();
    std::vector<std::string> trailing;
    while (keep > 0) {
      const std::string token(tokens[keep - 1]);
      if (token.rfind("w=", 0) == 0 || token.rfind("len=", 0) == 0) {
        trailing.insert(trailing.begin(), token);
        --keep;
      } else {
        break;
      }
    }
    if (!trailing.empty()) {
      std::string rebuilt;
      for (std::size_t i = 0; i < keep; ++i) {
        if (i != 0) rebuilt += ',';
        rebuilt += std::string(tokens[i]);
      }
      last = rebuilt;
      for (std::size_t i = 0; i < trailing.size(); ++i) {
        if (i != 0) out.args += ',';
        out.args += trailing[i];
      }
    }
  }
  return out;
}

std::unique_ptr<Workload> parse_one(std::string_view spec, std::uint64_t seed,
                                    std::uint32_t region) {
  const std::size_t colon = spec.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const std::string_view body =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);

  if (name == "mix" || name == "phased") {
    const CompositeBody composite = parse_composite(body);
    if (composite.children.empty() || composite.children[0].empty()) {
      bad(spec, "composite needs at least one child");
    }
    const Args args = parse_args(spec, composite.args);
    std::vector<std::unique_ptr<Workload>> kids;
    for (std::size_t i = 0; i < composite.children.size(); ++i) {
      kids.push_back(parse_one(composite.children[i], seed + i + 1,
                               region + static_cast<std::uint32_t>(i)));
    }
    if (name == "phased") {
      return std::make_unique<PhasedWorkload>(std::move(kids),
                                              args.u64("len", 65536));
    }
    std::vector<double> weights = args.f64_list("w");
    if (weights.empty()) weights.assign(kids.size(), 1.0);
    if (weights.size() != kids.size()) {
      bad(spec, "mix weight count does not match child count");
    }
    return std::make_unique<MixWorkload>(std::move(kids), std::move(weights),
                                         seed);
  }

  if (name == "spec") {
    // "spec:mcf,scale=8000" — first bare token is the profile name. Must
    // be handled before generic argument parsing (the name has no '=').
    const auto parts = split(body, ',');
    if (parts.empty() || parts[0].empty() ||
        parts[0].find('=') != std::string_view::npos) {
      bad(spec, "spec needs a profile name, e.g. spec:mcf");
    }
    std::string rest;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (i != 1) rest += ',';
      rest += std::string(parts[i]);
    }
    const Args spec_args = parse_args(spec, rest);
    const SpecProfile* profile = find_spec_profile(parts[0]);
    if (profile == nullptr) {
      bad(spec, "unknown SPEC profile '" + std::string(parts[0]) + "'");
    }
    return make_spec_workload(*profile,
                              spec_args.u64("scale", kDefaultSpecScale),
                              seed);
  }

  const Args args = parse_args(spec, body);
  if (name == "seq") {
    return std::make_unique<SequentialWorkload>(args.u64("m", 0, true),
                                                region);
  }
  if (name == "strided") {
    return std::make_unique<StridedWorkload>(args.u64("m", 0, true),
                                             args.u64("s", 1), region);
  }
  if (name == "uniform") {
    return std::make_unique<UniformRandomWorkload>(args.u64("m", 0, true),
                                                   seed, region);
  }
  if (name == "zipf") {
    return std::make_unique<ZipfWorkload>(args.u64("m", 0, true),
                                          args.f64("a", 1.0), seed, region);
  }
  if (name == "ptrchase") {
    return std::make_unique<PointerChaseWorkload>(args.u64("m", 0, true),
                                                  seed, region);
  }
  if (name == "matmul") {
    return std::make_unique<MatrixMultiplyWorkload>(args.u64("n", 0, true),
                                                    args.u64("t", 0), region);
  }
  if (name == "stencil") {
    return std::make_unique<StencilWorkload>(args.u64("w", 0, true),
                                             args.u64("h", 0, true), region);
  }
  if (name == "stackdist") {
    std::vector<std::uint64_t> depths = args.u64_list("d");
    std::vector<double> weights = args.f64_list("w");
    if (depths.empty() || depths.size() != weights.size()) {
      bad(spec, "stackdist needs matching d= and w= lists");
    }
    return std::make_unique<StackDistWorkload>(std::move(depths),
                                               std::move(weights),
                                               args.f64("miss", 0.1), seed,
                                               region);
  }
  bad(spec, "unknown generator '" + std::string(name) + "'");
}

}  // namespace

std::unique_ptr<Workload> parse_workload(std::string_view spec,
                                         std::uint64_t seed) {
  if (spec.empty()) {
    throw std::invalid_argument("workload spec is empty");
  }
  return parse_one(spec, seed, /*region=*/0);
}

bool workload_spec_valid(std::string_view spec) {
  try {
    parse_workload(spec);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  } catch (...) {
    return false;
  }
}

}  // namespace parda
