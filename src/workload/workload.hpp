// Workload: the abstract synthetic reference-stream generator.
//
// Generators stand in for the Pin-instrumented SPEC CPU2006 binaries of the
// paper's evaluation (see DESIGN.md, substitutions). Every generator is an
// infinite deterministic stream: same constructor arguments + seed => same
// addresses, which the test suite relies on.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parda {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Fills `out` completely with the next references of the stream.
  virtual void fill(std::span<Addr> out) = 0;

  /// Restarts the stream from the beginning.
  virtual void reset() = 0;

  /// Human-readable identity, e.g. "zipf(m=4096,a=0.8)".
  virtual std::string name() const = 0;
};

/// Materializes the first n references of a workload.
std::vector<Addr> generate_trace(Workload& workload, std::size_t n);

/// Convenience: reset + materialize.
std::vector<Addr> take_trace(Workload& workload, std::size_t n);

}  // namespace parda
