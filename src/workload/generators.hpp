// The library of synthetic reference-stream generators.
//
// Each models a locality archetype observed in the SPEC CPU2006 suite the
// paper evaluates: streaming (lbm/libquantum), strided array sweeps (milc),
// pointer chasing over a large working set (mcf), hot/cold skew (perlbench,
// povray), loop nests (namd/calculix via matrix multiply and stencils),
// and phase alternation (gcc). StackDistWorkload generates traces with a
// *prescribed* reuse distance distribution, which gives the tests traces
// whose histogram is known by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/prng.hpp"
#include "workload/workload.hpp"

namespace parda {

/// Disjoint address regions per generator so mixtures never alias.
/// Region r covers [r << 40, (r+1) << 40).
Addr region_base(std::uint32_t region) noexcept;

/// Cyclic sweep over a footprint of `footprint` addresses: 0,1,..,M-1,0,...
class SequentialWorkload final : public Workload {
 public:
  SequentialWorkload(std::uint64_t footprint, std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override { pos_ = 0; }
  std::string name() const override;

 private:
  std::uint64_t footprint_;
  Addr base_;
  std::uint64_t pos_ = 0;
};

/// Cyclic sweep with a stride (gcd(stride, footprint) need not be 1; the
/// stream walks stride-apart addresses and advances by one on wraparound,
/// touching the whole footprint like a blocked column walk).
class StridedWorkload final : public Workload {
 public:
  StridedWorkload(std::uint64_t footprint, std::uint64_t stride,
                  std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override { pos_ = 0; }
  std::string name() const override;

 private:
  std::uint64_t footprint_;
  std::uint64_t stride_;
  Addr base_;
  std::uint64_t pos_ = 0;
};

/// Independent uniform references over the footprint.
class UniformRandomWorkload final : public Workload {
 public:
  UniformRandomWorkload(std::uint64_t footprint, std::uint64_t seed,
                        std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override { rng_ = Xoshiro256(seed_); }
  std::string name() const override;

 private:
  std::uint64_t footprint_;
  std::uint64_t seed_;
  Addr base_;
  Xoshiro256 rng_;
};

/// Zipf-skewed references: rank r touched with probability ~ 1/(r+1)^alpha,
/// ranks scattered over the footprint by a pseudo-random bijection.
class ZipfWorkload final : public Workload {
 public:
  ZipfWorkload(std::uint64_t footprint, double alpha, std::uint64_t seed,
               std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override { rng_ = Xoshiro256(seed_); }
  std::string name() const override;

 private:
  std::uint64_t footprint_;
  std::uint64_t seed_;
  Addr base_;
  ZipfSampler sampler_;
  Xoshiro256 rng_;
};

/// Pointer chasing around a random Hamiltonian cycle over `nodes` nodes —
/// the classic mcf-style pattern: almost no short-distance reuse, footprint
/// touched in a fixed pseudo-random order.
class PointerChaseWorkload final : public Workload {
 public:
  PointerChaseWorkload(std::uint64_t nodes, std::uint64_t seed,
                       std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override { cursor_ = 0; }
  std::string name() const override;

 private:
  Addr base_;
  std::vector<std::uint32_t> next_;
  std::uint64_t seed_;
  std::uint32_t cursor_ = 0;
};

/// The address stream of a (tiled) n x n x n matrix multiply C += A * B in
/// i-k-j order, one word per element; repeats passes forever.
class MatrixMultiplyWorkload final : public Workload {
 public:
  /// tile == 0 disables tiling.
  MatrixMultiplyWorkload(std::uint64_t n, std::uint64_t tile,
                         std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override;
  std::string name() const override;

 private:
  void refill_pass();

  std::uint64_t n_;
  std::uint64_t tile_;
  Addr base_;
  std::vector<Addr> pass_;  // one full pass, replayed cyclically
  std::size_t pos_ = 0;
};

/// 5-point stencil sweeps over a width x height grid (reads 5, writes 1 per
/// cell, two arrays ping-ponged) — namd/milc-style structured locality.
class StencilWorkload final : public Workload {
 public:
  StencilWorkload(std::uint64_t width, std::uint64_t height,
                  std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override {
    x_ = y_ = 0;
    flip_ = false;
    queue_pos_ = queue_.size();
  }
  std::string name() const override;

 private:
  std::uint64_t width_;
  std::uint64_t height_;
  Addr base_;
  std::uint64_t x_ = 0;
  std::uint64_t y_ = 0;
  bool flip_ = false;
  std::vector<Addr> queue_;
  std::size_t queue_pos_ = 0;
};

/// Generates a stream whose reuse distance distribution is prescribed:
/// with probability weights[i] the next reference reuses the stack entry at
/// depth depths[i]; the reserved weight `miss_weight` emits a brand-new
/// address (an infinity). The exact expected histogram is known by
/// construction, making this the tests' ground-truth workload.
class StackDistWorkload final : public Workload {
 public:
  StackDistWorkload(std::vector<std::uint64_t> depths,
                    std::vector<double> weights, double miss_weight,
                    std::uint64_t seed, std::uint32_t region = 0);
  void fill(std::span<Addr> out) override;
  void reset() override;
  std::string name() const override;

 private:
  Addr generate_one();

  std::vector<std::uint64_t> depths_;
  std::vector<double> cumulative_;  // cumulative weights incl. miss at end
  std::uint64_t seed_;
  Addr base_;
  Xoshiro256 rng_;
  std::vector<Addr> stack_;  // front = most recent
  Addr next_fresh_ = 0;
};

/// Interleaves children randomly with the given weights (per-reference
/// choice) — used to compose the SPEC-like profiles.
class MixWorkload final : public Workload {
 public:
  MixWorkload(std::vector<std::unique_ptr<Workload>> children,
              std::vector<double> weights, std::uint64_t seed);
  void fill(std::span<Addr> out) override;
  void reset() override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<Workload>> children_;
  std::vector<double> cumulative_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
};

/// Runs children in long alternating phases (gcc-style phase behaviour and
/// the input for the phase-detection application).
class PhasedWorkload final : public Workload {
 public:
  PhasedWorkload(std::vector<std::unique_ptr<Workload>> children,
                 std::uint64_t phase_length);
  void fill(std::span<Addr> out) override;
  void reset() override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<Workload>> children_;
  std::uint64_t phase_length_;
  std::uint64_t emitted_ = 0;
};

}  // namespace parda
