// SPEC CPU2006 workload profiles mirroring the paper's Table IV.
//
// We cannot run Pin over the real SPEC binaries here, so each benchmark is
// modelled by a synthetic mixture whose footprint and locality character
// match its published M (distinct addresses) and N (trace length), scaled
// down by a configurable factor (DESIGN.md, substitutions). The paper's
// measured numbers are embedded so the bench harnesses can print
// paper-vs-measured side by side.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "workload/workload.hpp"

namespace parda {

struct SpecProfile {
  std::string_view name;
  std::uint64_t paper_m;  // distinct addresses (Table IV column M)
  std::uint64_t paper_n;  // trace length (Table IV column N)
  // Table IV timings, seconds, on the paper's testbed:
  double paper_orig;    // uninstrumented runtime
  double paper_pin;     // + Pin instrumentation
  double paper_pipe;    // + pipe transfer
  double paper_olken;   // sequential Olken81 analysis
  double paper_parda;   // Parda, 64 procs, 64Mw pipe, 2Mw bound

  std::uint64_t scaled_m(std::uint64_t scale) const {
    return paper_m / scale == 0 ? 1 : paper_m / scale;
  }
  std::uint64_t scaled_n(std::uint64_t scale) const {
    return paper_n / scale == 0 ? 1 : paper_n / scale;
  }
};

/// All 15 benchmarks of Table IV, in the paper's order.
std::span<const SpecProfile> spec_profiles();

/// Looks up a profile by name; aborts on unknown names.
const SpecProfile& spec_profile(std::string_view name);

/// Non-fatal lookup; nullptr when the name is unknown.
const SpecProfile* find_spec_profile(std::string_view name) noexcept;

/// Builds the synthetic reference generator for a profile with footprint
/// ~= paper_m / scale.
std::unique_ptr<Workload> make_spec_workload(const SpecProfile& profile,
                                             std::uint64_t scale,
                                             std::uint64_t seed);
std::unique_ptr<Workload> make_spec_workload(std::string_view name,
                                             std::uint64_t scale,
                                             std::uint64_t seed);

/// The default down-scaling factor used by tests and benches; override via
/// the PARDA_BENCH_SCALE environment variable in the bench harnesses.
inline constexpr std::uint64_t kDefaultSpecScale = 8000;

}  // namespace parda
