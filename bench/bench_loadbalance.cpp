// Ablation A8: load balance across ranks. Section IV-D argues the
// multi-phase algorithm "achieves good load balancing" because the
// state-holder merges while other ranks process infinities; this harness
// prints per-rank work (busy time, chunk references, records received)
// for the offline single-stage run versus phased runs.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "trace/trace_pipe.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

namespace parda::bench {
namespace {

constexpr std::size_t kBlock = 4096;

PardaResult run_streamed(const std::vector<Addr>& trace,
                         const PardaOptions& options) {
  TracePipe pipe(8 * kBlock);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += kBlock) {
      const std::size_t hi = std::min(at + kBlock, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  return result;
}

void print_profiles(const char* label, const PardaResult& result) {
  std::printf("%s\n", label);
  TablePrinter table({"rank", "busy (ms)", "chunk refs", "records in",
                      "records fwd", "hits resolved", "peak resident"});
  double busy_max = 0.0;
  double busy_sum = 0.0;
  for (std::size_t r = 0; r < result.profiles.size(); ++r) {
    const RankProfile& p = result.profiles[r];
    const double busy =
        result.stats.ranks[r].busy_seconds * 1000.0;
    busy_max = std::max(busy_max, busy);
    busy_sum += busy;
    table.add_row({std::to_string(r), TablePrinter::fmt(busy, 1),
                   with_commas(p.chunk_refs),
                   with_commas(p.records_received),
                   with_commas(p.records_forwarded),
                   with_commas(p.hits_resolved),
                   with_commas(p.peak_resident)});
  }
  table.print();
  const double balance =
      busy_max == 0.0
          ? 1.0
          : busy_sum / (busy_max * static_cast<double>(
                                       result.profiles.size()));
  std::printf("balance = avg busy / max busy = %.2f (1.0 = perfect)\n\n",
              balance);
}

}  // namespace
}  // namespace parda::bench

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 1'000'000);
  const int np = static_cast<int>(env_u64("PARDA_BENCH_PROCS", 8));

  auto workload = make_spec_workload("sphinx3", scale, /*seed=*/1);
  const std::uint64_t n = std::min<std::uint64_t>(
      spec_profile("sphinx3").scaled_n(scale), maxrefs);
  const std::vector<Addr> trace = take_trace(*workload, n);

  std::printf("Load-balance ablation (Section IV-D), sphinx3 profile, "
              "N=%s, np=%d\n\n",
              with_commas(n).c_str(), np);

  PardaOptions offline;
  offline.num_procs = np;
  print_profiles("offline single-stage (Algorithm 3): rank 0 resolves "
                 "everything, left ranks do extra merge work",
                 parda_analyze(trace, offline));

  for (const std::size_t chunk : {65536UL, 8192UL}) {
    PardaOptions streamed;
    streamed.num_procs = np;
    streamed.chunk_words = chunk;
    char label[128];
    std::snprintf(label, sizeof(label),
                  "phased (Algorithm 5), C=%zu: rank reversal spreads the "
                  "merge across ranks",
                  chunk);
    print_profiles(label, run_streamed(trace, streamed));
  }
  return 0;
}
