// Ablation A7: sampling-based approximation vs exact analysis — the
// accuracy/speed trade-off of the approximate family ([4][19][15]) that
// Parda is designed to avoid, and the composition of both (Section VII).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "hist/mrc.hpp"
#include "seq/approx.hpp"
#include "seq/olken.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 1'000'000);
  const int np = static_cast<int>(env_u64("PARDA_BENCH_PROCS", 8));

  auto workload = make_spec_workload("perlbench", scale, /*seed=*/1);
  const std::uint64_t n = std::min<std::uint64_t>(
      spec_profile("perlbench").scaled_n(scale), maxrefs);
  const std::vector<Addr> trace = take_trace(*workload, n);

  WallTimer t0;
  const Histogram exact = olken_analysis(trace);
  const double exact_time = t0.seconds();

  std::printf(
      "Sampling ablation, perlbench profile, N=%s, M=%s\n"
      "exact sequential analysis: %.3fs\n\n",
      with_commas(n).c_str(), with_commas(exact.infinities()).c_str(),
      exact_time);

  auto mrc_error = [&](const Histogram& approx) {
    double worst = 0.0;
    for (std::uint64_t c = 16; c <= exact.max_distance() + 16; c *= 2) {
      worst = std::max(worst,
                       std::abs(miss_ratio(exact, c) - miss_ratio(approx, c)));
    }
    return worst;
  };

  TablePrinter table({"rate", "mode", "time (s)", "speedup", "max MRC err"});
  for (const double rate : {0.5, 0.2, 0.1, 0.05, 0.01}) {
    {
      WallTimer t;
      const Histogram h = sampled_analysis(trace, rate, 3);
      const double elapsed = t.seconds();
      table.add_row({TablePrinter::fmt(rate, 2), "sampled sequential",
                     TablePrinter::fmt(elapsed, 3),
                     TablePrinter::fmt(exact_time / elapsed, 1) + "x",
                     TablePrinter::fmt(mrc_error(h), 4)});
    }
    {
      PardaOptions options;
      options.num_procs = np;
      WallTimer t;
      const Histogram h = sampled_parda_analysis(trace, rate, options, 3);
      const double elapsed = t.seconds();
      table.add_row({TablePrinter::fmt(rate, 2), "sampled + parda",
                     TablePrinter::fmt(elapsed, 3),
                     TablePrinter::fmt(exact_time / elapsed, 1) + "x",
                     TablePrinter::fmt(mrc_error(h), 4)});
    }
  }
  table.print();
  std::printf(
      "\nParda keeps full accuracy; sampling trades MRC error for speed, "
      "and composing both multiplies the speedups (Section VII)\n");
  return 0;
}
