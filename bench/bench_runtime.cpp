// Runtime ablation: what the persistent executor actually buys. Measures
// cold-spawn (a fresh WorkerPool per analysis — the historical comm::run
// shape) against warm-pool (one PardaRuntime reused across analyses) for
// empty jobs and small-trace end-to-end analyses at np ∈ {2, 4, 8}, and
// writes the comparison to BENCH_runtime.json (override the path with
// PARDA_BENCH_JSON). This is the end-to-end datapoint for the perf
// trajectory: repeated small analyses are exactly the workload online
// monitoring and bench loops put on the engine.
//
// Environment: PARDA_BENCH_REFS (default 2000 references per trace — small
// on purpose: the spawn overhead under measurement is a fixed cost, so the
// repeated-small-analysis regime is where it shows), PARDA_BENCH_REPS
// (default 50 analyses per measurement), PARDA_BENCH_JSON (default
// BENCH_runtime.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runtime.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

void BM_ColdSpawnJob(benchmark::State& state) {
  // Fresh pool per job: thread spawn + World build + join every time.
  const auto np = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::run(np, [](comm::Comm&) {});
  }
}

BENCHMARK(BM_ColdSpawnJob)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_WarmPoolJob(benchmark::State& state) {
  // Parked workers + cached World: the steady-state cost of one job.
  const auto np = static_cast<int>(state.range(0));
  comm::WorkerPool pool(np);
  pool.run_job(np, [](comm::Comm&) {});  // absorb first-World cost
  for (auto _ : state) {
    pool.run_job(np, [](comm::Comm&) {});
  }
}

BENCHMARK(BM_WarmPoolJob)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ColdAnalyze(benchmark::State& state) {
  const auto np = static_cast<int>(state.range(0));
  ZipfWorkload w(500, 0.9, 17);
  const auto trace = generate_trace(w, 20000);
  PardaOptions options;
  options.num_procs = np;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parda_analyze(trace, options).hist.total());
  }
}

BENCHMARK(BM_ColdAnalyze)->Arg(2)->Arg(4)->UseRealTime();

void BM_WarmAnalyze(benchmark::State& state) {
  const auto np = static_cast<int>(state.range(0));
  ZipfWorkload w(500, 0.9, 17);
  const auto trace = generate_trace(w, 20000);
  PardaOptions options;
  options.num_procs = np;
  core::PardaRuntime runtime;
  auto session = runtime.session(options);
  session.analyze(trace);  // absorb spawn + first-World cost
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.analyze(trace).hist.total());
  }
}

BENCHMARK(BM_WarmAnalyze)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// The JSON artifact: cold vs warm, measured directly (not via the
// google-benchmark loop) so the file carries comparable absolute numbers.
// ---------------------------------------------------------------------------

struct RuntimePoint {
  std::string mode;  // "cold_spawn" | "warm_pool"
  int np;
  std::uint64_t refs;   // 0 for the empty-job latency points
  int reps;
  double total_seconds;
  double per_analysis_ms;   // median over reps (robust against CI noise)
  double throughput_mrefs;  // refs/s at the median (0 for empty jobs)
};

RuntimePoint summarize(std::string mode, int np, std::uint64_t refs,
                       std::vector<double> rep_seconds) {
  double total = 0.0;
  for (const double s : rep_seconds) total += s;
  std::sort(rep_seconds.begin(), rep_seconds.end());
  const double median = rep_seconds[rep_seconds.size() / 2];
  return {std::move(mode),
          np,
          refs,
          static_cast<int>(rep_seconds.size()),
          total,
          median * 1e3,
          refs == 0 ? 0.0 : static_cast<double>(refs) / median / 1e6};
}

RuntimePoint measure_cold(int np, const std::vector<Addr>& trace, int reps) {
  PardaOptions options;
  options.num_procs = np;
  std::vector<double> rep_seconds;
  rep_seconds.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    benchmark::DoNotOptimize(parda_analyze(trace, options).hist.total());
    rep_seconds.push_back(timer.seconds());
  }
  return summarize("cold_spawn", np, trace.size(), std::move(rep_seconds));
}

RuntimePoint measure_warm(int np, const std::vector<Addr>& trace, int reps) {
  PardaOptions options;
  options.num_procs = np;
  core::PardaRuntime runtime;
  auto session = runtime.session(options);
  session.analyze(trace);  // spawn workers + build the World once
  std::vector<double> rep_seconds;
  rep_seconds.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    benchmark::DoNotOptimize(session.analyze(trace).hist.total());
    rep_seconds.push_back(timer.seconds());
  }
  return summarize("warm_pool", np, trace.size(), std::move(rep_seconds));
}

void write_json(const std::string& path,
                const std::vector<RuntimePoint>& points) {
  std::vector<bench::BenchPoint> out;
  out.reserve(points.size());
  for (const RuntimePoint& p : points) {
    bench::BenchPoint bp;
    bp.name = p.mode;
    bp.params = {{"np", static_cast<std::uint64_t>(p.np)},
                 {"refs", p.refs},
                 {"reps", static_cast<std::uint64_t>(p.reps)}};
    bp.metrics = {{"total_seconds", p.total_seconds},
                  {"per_analysis_ms", p.per_analysis_ms},
                  {"throughput_mrefs_per_s", p.throughput_mrefs}};
    out.push_back(std::move(bp));
  }
  bench::write_bench_json(path, "runtime", out);
}

void run_runtime_suite() {
  const auto refs = bench::env_u64("PARDA_BENCH_REFS", 2000);
  const int reps = static_cast<int>(bench::env_u64("PARDA_BENCH_REPS", 50));
  const std::string json_path = bench::bench_json_path("BENCH_runtime.json");

  ZipfWorkload w(500, 0.9, 17);
  const auto trace = generate_trace(w, refs);
  const std::vector<Addr> empty;

  std::vector<RuntimePoint> points;
  for (int np : {2, 4, 8}) {
    points.push_back(measure_cold(np, empty, reps));
    points.push_back(measure_warm(np, empty, reps));
  }
  for (int np : {2, 4}) {
    points.push_back(measure_cold(np, trace, reps));
    points.push_back(measure_warm(np, trace, reps));
  }

  std::printf("\nruntime reuse (reps=%d, refs=%" PRIu64 ")\n%-12s %4s %8s %16s %12s\n",
              reps, refs, "mode", "np", "refs", "per_analysis_ms",
              "Mrefs/s");
  for (const RuntimePoint& p : points) {
    std::printf("%-12s %4d %8" PRIu64 " %16.4f %12.3f\n", p.mode.c_str(),
                p.np, p.refs, p.per_analysis_ms, p.throughput_mrefs);
  }
  write_json(json_path, points);
}

}  // namespace
}  // namespace parda

int main(int argc, char** argv) {
  parda::run_runtime_suite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
