// Reproduces Figure 5(b): per-benchmark slowdown factor while varying the
// processor count (8..64) at a fixed 512Kw cache bound and 64Mw pipe.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "trace/trace_pipe.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

namespace parda::bench {
namespace {

constexpr std::size_t kBlock = 4096;

double measure_orig(Workload& w, std::uint64_t n) {
  w.reset();
  std::vector<Addr> block(kBlock);
  WallTimer t;
  for (std::uint64_t at = 0; at < n; at += block.size()) {
    w.fill(std::span<Addr>(block.data(),
                           std::min<std::uint64_t>(block.size(), n - at)));
  }
  return t.seconds();
}

double measure_parda_crit(const std::vector<Addr>& trace, int np,
                          std::uint64_t bound, std::size_t pipe_words) {
  TracePipe pipe(pipe_words);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += kBlock) {
      const std::size_t hi = std::min(at + kBlock, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  PardaOptions options;
  options.num_procs = np;
  options.bound = bound;
  options.chunk_words =
      std::max<std::size_t>(1024, pipe_words / static_cast<std::size_t>(np));
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  return result.stats.max_busy();
}

}  // namespace
}  // namespace parda::bench

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 1'000'000);
  const std::size_t pipe_words = scaled_bound(64ULL << 20);
  const std::uint64_t bound = scaled_bound(512ULL << 10);

  std::printf(
      "Figure 5(b) reproduction: slowdown vs processors, fixed bound %s "
      "and %s pipe (scale 1/%llu)\n\n",
      words_human(bound).c_str(), words_human(pipe_words).c_str(),
      static_cast<unsigned long long>(scale));

  TablePrinter table({"benchmark", "p8", "p16", "p32", "p64", "speedup"});
  std::vector<double> speedups;
  for (const SpecProfile& profile : spec_profiles()) {
    auto workload = make_spec_workload(profile, scale, /*seed=*/1);
    const std::uint64_t n =
        std::min<std::uint64_t>(profile.scaled_n(scale), maxrefs);
    const double orig = measure_orig(*workload, n);
    const std::vector<Addr> trace = take_trace(*workload, n);
    std::vector<std::string> row{std::string(profile.name)};
    double first = 0;
    double last = 0;
    for (std::uint64_t np : kRankSweep) {
      const double crit = measure_parda_crit(trace, static_cast<int>(np),
                                             bound, pipe_words);
      if (np == kRankSweep[0]) first = crit;
      last = crit;
      row.push_back(TablePrinter::fmt(crit / std::max(orig, 1e-9), 1) + "x");
    }
    const double speedup = first / std::max(last, 1e-9);
    speedups.push_back(speedup);
    row.push_back(TablePrinter::fmt(speedup, 2) + "x");
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\naverage 8->64 rank speedup (critical path): %.2fx; paper reports "
      "an average over 3.5x with diminishing returns as ranks are added\n",
      geomean(speedups));
  return 0;
}
