// Ablation A5: the multi-phase online algorithm (Algorithm 5). Sweeps the
// per-rank chunk size C (phase = np*C) and reports analysis time plus the
// communication the phase reduction costs — the offline single-phase run
// is the reference point.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "trace/trace_pipe.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

namespace parda::bench {
namespace {

constexpr std::size_t kBlock = 4096;

PardaResult run_streamed(const std::vector<Addr>& trace,
                         const PardaOptions& options,
                         std::size_t pipe_words) {
  TracePipe pipe(pipe_words);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += kBlock) {
      const std::size_t hi = std::min(at + kBlock, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  return result;
}

}  // namespace
}  // namespace parda::bench

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 1'000'000);
  const int np = static_cast<int>(env_u64("PARDA_BENCH_PROCS", 8));

  auto workload = make_spec_workload("milc", scale, /*seed=*/1);
  const std::uint64_t n =
      std::min<std::uint64_t>(spec_profile("milc").scaled_n(scale), maxrefs);
  const std::vector<Addr> trace = take_trace(*workload, n);

  PardaOptions offline;
  offline.num_procs = np;
  WallTimer t0;
  const PardaResult reference = parda_analyze(trace, offline);
  const double offline_time = t0.seconds();

  std::printf(
      "Phase-size ablation (Algorithm 5), milc profile, N=%s, np=%d\n"
      "offline single-stage run: %.3fs wall, %.3fs critical path\n\n",
      with_commas(n).c_str(), np, offline_time,
      reference.stats.max_busy());

  TablePrinter table({"chunk C", "phases", "wall (s)", "crit (s)",
                      "messages", "bytes"});
  for (std::size_t chunk : {1024UL, 4096UL, 16384UL, 65536UL, 262144UL}) {
    PardaOptions options;
    options.num_procs = np;
    options.chunk_words = chunk;
    WallTimer t;
    const PardaResult result = run_streamed(trace, options, 4 * chunk);
    const double wall = t.seconds();
    if (!(result.hist == reference.hist)) {
      std::fprintf(stderr, "MISMATCH at C=%zu\n", chunk);
      return 1;
    }
    const std::uint64_t phase_len =
        static_cast<std::uint64_t>(chunk) * static_cast<std::uint64_t>(np);
    const std::uint64_t phases = (n + phase_len - 1) / phase_len;
    table.add_row({words_human(chunk), with_commas(phases),
                   TablePrinter::fmt(wall, 3),
                   TablePrinter::fmt(result.stats.max_busy(), 3),
                   with_commas(result.stats.total_messages()),
                   with_commas(result.stats.total_bytes())});
  }
  table.print();
  std::printf(
      "\nsmaller phases track the stream more closely but pay the "
      "reduction (Algorithm 6) more often\n");
  return 0;
}
