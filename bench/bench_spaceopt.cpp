// Ablation A2: space-optimized local-infinity processing (Algorithm 4)
// versus the unoptimized Algorithm 3. Measures run time and, by driving
// the rank states directly, the aggregate tree residency after the merge —
// the paper's O(np * M) vs O(M) claim (Section IV-C).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "core/rank_state.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

namespace parda::bench {
namespace {

/// Emulates the full offline pipeline on one thread and reports the
/// aggregate resident tree entries across all ranks after the merge.
std::uint64_t aggregate_residency(const std::vector<Addr>& trace, int np,
                                  bool space_optimized) {
  std::vector<RankState<>> ranks;
  ranks.reserve(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    ranks.emplace_back(kUnbounded, space_optimized);
  }
  const std::size_t chunk =
      (trace.size() + static_cast<std::size_t>(np) - 1) /
      static_cast<std::size_t>(np);
  for (int p = 0; p < np; ++p) {
    const std::size_t lo = std::min(static_cast<std::size_t>(p) * chunk,
                                    trace.size());
    const std::size_t hi = std::min(lo + chunk, trace.size());
    for (std::size_t t = lo; t < hi; ++t) {
      ranks[static_cast<std::size_t>(p)].process_own(trace[t], t);
    }
  }
  // Pass infinities leftward round by round, exactly Algorithm 3's loop:
  // rank p participates in rounds 0 .. np-p-1, sending first, then
  // processing what its right neighbour sent in the same round.
  for (int round = 0; round < np; ++round) {
    std::vector<std::vector<InfRecord>> sent(static_cast<std::size_t>(np));
    for (int p = 0; p < np; ++p) {
      if (round >= np - p) continue;
      auto& rank = ranks[static_cast<std::size_t>(p)];
      if (p == 0) {
        rank.flush_global_infinities();
      } else {
        sent[static_cast<std::size_t>(p)] = rank.take_local_infinities();
      }
    }
    for (int p = 0; p + 1 < np; ++p) {
      if (round < np - p - 1) {
        ranks[static_cast<std::size_t>(p)].process_incoming(
            sent[static_cast<std::size_t>(p + 1)]);
      }
    }
  }
  std::uint64_t resident = 0;
  for (const auto& rank : ranks) resident += rank.resident();
  return resident;
}

}  // namespace
}  // namespace parda::bench

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 1'000'000);

  auto workload = make_spec_workload("perlbench", scale, /*seed=*/1);
  const std::uint64_t n =
      std::min<std::uint64_t>(spec_profile("perlbench").scaled_n(scale),
                              maxrefs);
  const std::vector<Addr> trace = take_trace(*workload, n);
  const Histogram reference = sequential_reference(trace);
  const std::uint64_t m = reference.infinities();

  std::printf(
      "Space-optimization ablation (Section IV-C), perlbench profile, "
      "N=%s, M=%s\n\n",
      with_commas(n).c_str(), with_commas(m).c_str());

  TablePrinter table({"np", "mode", "time (s)", "aggregate resident",
                      "resident / M"});
  for (int np : {2, 4, 8, 16}) {
    for (const bool opt : {false, true}) {
      PardaOptions options;
      options.num_procs = np;
      options.space_optimized = opt;
      WallTimer t;
      const PardaResult result = parda_analyze(trace, options);
      const double elapsed = t.seconds();
      if (!(result.hist == reference)) {
        std::fprintf(stderr, "MISMATCH np=%d opt=%d\n", np, opt);
        return 1;
      }
      const std::uint64_t resident = aggregate_residency(trace, np, opt);
      table.add_row({std::to_string(np),
                     opt ? "optimized (Alg.4)" : "plain (Alg.3)",
                     TablePrinter::fmt(elapsed, 3), with_commas(resident),
                     TablePrinter::fmt(static_cast<double>(resident) /
                                           static_cast<double>(m),
                                       2)});
    }
  }
  table.print();
  std::printf(
      "\npaper claim: plain aggregate residency grows ~O(np*M); optimized "
      "stays O(M) (each address on exactly one rank)\n");
  return 0;
}
