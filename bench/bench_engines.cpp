// End-to-end engine comparison on an MRC-histogram workload: every
// sequential ReuseAnalyzer head-to-head (LruChain vs Olken-splay/AVL/treap
// vs Bennett-Kruskal's Fenwick engine vs the interval engine) plus the
// parallel Parda driver at np=1..4, each measured through both the batched
// process_block path and the per-reference loop.
//
// Writes a parda.bench.v1 artifact (default BENCH_engines.json, override
// with PARDA_BENCH_JSON); a point's identity is (name, np, block) — trace
// length deliberately stays out of the params so a small CI run diffs
// against the committed full-size baseline with scripts/bench_diff.py
// (gate on --metric ns_per_ref: throughput mirrors it inverted, and the
// diff tool treats every metric as a cost).
//
// Environment: PARDA_BENCH_ENGINE_REFS (default 1M references),
// PARDA_BENCH_ENGINE_REPS (default 3; block/loop reps interleave and the
// best rep of each path is reported),
// PARDA_BENCH_SCALE (SPEC footprint divisor), PARDA_BENCH_JSON.
//
// The google-benchmark registrations below the suite remain for ad-hoc
// `--benchmark_filter=` runs of the slow baselines (naive, OPT stack).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "seq/bennett_kruskal.hpp"
#include "seq/interval_analyzer.hpp"
#include "seq/lru_chain.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "seq/opt.hpp"
#include "tree/avl_tree.hpp"
#include "tree/treap.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

/// Suite workload: a zipf trace whose universe scales with the trace
/// length (footprint ~0.4x refs at a=0.8). MRC engines earn their keep
/// when the address table outgrows the cache hierarchy — a small-footprint
/// trace would make every engine look alike and turn the prefetched block
/// path into pure overhead.
const std::vector<Addr>& shared_trace() {
  static const std::vector<Addr> trace = [] {
    const auto refs = bench::env_u64("PARDA_BENCH_ENGINE_REFS", 1 << 20);
    ZipfWorkload w(refs, 0.8, 5);
    return generate_trace(w, refs);
  }();
  return trace;
}

// ---------------------------------------------------------------------------
// The parda.bench.v1 artifact suite.
// ---------------------------------------------------------------------------

double best(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

bench::BenchPoint make_point(std::string name, std::uint64_t np, bool block,
                             double seconds, std::size_t refs) {
  bench::BenchPoint p;
  p.name = std::move(name);
  p.params = {{"np", np}, {"block", block ? 1u : 0u}};
  p.metrics = {
      {"ns_per_ref", seconds * 1e9 / static_cast<double>(refs)},
      {"mrefs_per_s", static_cast<double>(refs) / seconds / 1e6}};
  return p;
}

/// One sequential engine, both dispatch paths. make() returns a fresh
/// analyzer per rep. The block (process_block) and per-reference-loop
/// reps are interleaved and the best rep of each is kept: the two paths
/// differ by tens of ns/ref while background load on a shared box drifts
/// timings by 2x over minutes, so back-to-back minima are the only
/// comparison that survives the noise.
template <typename Make>
void measure_seq(const char* name, const std::vector<Addr>& trace, int reps,
                 std::vector<bench::BenchPoint>& points, Make make) {
  std::vector<double> block_secs, loop_secs;
  for (int i = 0; i < reps; ++i) {
    for (int j = 0; j < 2; ++j) {
      const bool block = (i + j) % 2 == 0;  // alternate which path goes first
      auto analyzer = make();
      WallTimer timer;
      if (block) {
        process_block(analyzer, std::span<const Addr>(trace));
      } else {
        for (Addr z : trace) analyzer.process(z);
      }
      analyzer.finish();
      benchmark::DoNotOptimize(analyzer.histogram().total());
      (block ? block_secs : loop_secs).push_back(timer.seconds());
    }
  }
  points.push_back(make_point(name, 1, true, best(block_secs), trace.size()));
  points.push_back(make_point(name, 1, false, best(loop_secs), trace.size()));
}

void measure_parda(int np, const std::vector<Addr>& trace, int reps,
                   std::vector<bench::BenchPoint>& points) {
  std::vector<double> block_secs, loop_secs;
  for (int i = 0; i < reps; ++i) {
    for (int j = 0; j < 2; ++j) {
      const bool block = (i + j) % 2 == 0;
      PardaOptions options;
      options.num_procs = np;
      options.block_dispatch = block;
      WallTimer timer;
      benchmark::DoNotOptimize(parda_analyze(trace, options).hist.total());
      (block ? block_secs : loop_secs).push_back(timer.seconds());
    }
  }
  points.push_back(make_point("parda_splay", static_cast<std::uint64_t>(np),
                              true, best(block_secs), trace.size()));
  points.push_back(make_point("parda_splay", static_cast<std::uint64_t>(np),
                              false, best(loop_secs), trace.size()));
}

void run_engines_suite() {
  const int reps =
      static_cast<int>(bench::env_u64("PARDA_BENCH_ENGINE_REPS", 3));
  const std::string json_path = bench::bench_json_path("BENCH_engines.json");
  const auto& trace = shared_trace();

  std::vector<bench::BenchPoint> points;
  measure_seq("lru", trace, reps, points, [] { return LruChainAnalyzer(); });
  measure_seq("olken_splay", trace, reps, points,
              [] { return OlkenAnalyzer<SplayTree>(); });
  measure_seq("olken_avl", trace, reps, points,
              [] { return OlkenAnalyzer<AvlTree>(); });
  measure_seq("olken_treap", trace, reps, points,
              [] { return OlkenAnalyzer<Treap>(); });
  measure_seq("fenwick", trace, reps, points,
              [] { return BennettKruskalAnalyzer(); });
  measure_seq("interval", trace, reps, points,
              [] { return IntervalAnalyzer(); });
  for (int np = 1; np <= 4; ++np) {
    measure_parda(np, trace, reps, points);
  }

  std::printf("\nengines (refs=%zu, reps=%d)\n%-14s %3s %6s %12s %10s\n",
              trace.size(), reps, "engine", "np", "block", "ns_per_ref",
              "Mrefs/s");
  for (const bench::BenchPoint& p : points) {
    std::printf("%-14s %3" PRIu64 " %6" PRIu64 " %12.2f %10.2f\n",
                p.name.c_str(), p.params[0].second, p.params[1].second,
                p.metrics[0].second, p.metrics[1].second);
  }
  bench::write_bench_json(json_path, "engines", points);
}

// ---------------------------------------------------------------------------
// google-benchmark registrations (ad-hoc runs; not part of the artifact).
// ---------------------------------------------------------------------------

template <typename Tree>
void BM_PardaEngine(benchmark::State& state) {
  const auto& trace = shared_trace();
  PardaOptions options;
  options.num_procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const PardaResult r = parda_analyze<Tree>(trace, options);
    benchmark::DoNotOptimize(r.hist.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_TEMPLATE(BM_PardaEngine, SplayTree)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_PardaEngine, AvlTree)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_PardaEngine, Treap)->Arg(4)->UseRealTime();

void BM_LruChain(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru_chain_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_LruChain);

void BM_SequentialOlken(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(olken_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_SequentialOlken);

void BM_IntervalAnalyzer(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interval_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_IntervalAnalyzer);

void BM_BennettKruskal(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bennett_kruskal_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_BennettKruskal);

void BM_OptStack(benchmark::State& state) {
  // OPT stack distances (linear-stack percolation): run on a prefix — the
  // per-reference cost is O(stack depth).
  const auto& full = shared_trace();
  const std::span<const Addr> trace(full.data(), 1 << 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_distance_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_OptStack);

void BM_NaiveStack(benchmark::State& state) {
  // O(N*M): run on a small prefix only.
  const auto& full = shared_trace();
  const std::span<const Addr> trace(full.data(), 1 << 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_stack_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_NaiveStack);

}  // namespace
}  // namespace parda

int main(int argc, char** argv) {
  parda::run_engines_suite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
