// End-to-end engine comparison: full Parda runs templated over each tree
// engine, plus the naive stack baseline, on one SPEC-like workload.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "seq/bennett_kruskal.hpp"
#include "seq/interval_analyzer.hpp"
#include "seq/naive.hpp"
#include "seq/opt.hpp"
#include "seq/olken.hpp"
#include "tree/avl_tree.hpp"
#include "tree/treap.hpp"
#include "workload/spec.hpp"

namespace parda {
namespace {

const std::vector<Addr>& shared_trace() {
  static const std::vector<Addr> trace = [] {
    auto w = make_spec_workload("gcc", bench::spec_scale(), 5);
    return generate_trace(*w, 1 << 17);
  }();
  return trace;
}

template <typename Tree>
void BM_PardaEngine(benchmark::State& state) {
  const auto& trace = shared_trace();
  PardaOptions options;
  options.num_procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const PardaResult r = parda_analyze<Tree>(trace, options);
    benchmark::DoNotOptimize(r.hist.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_TEMPLATE(BM_PardaEngine, SplayTree)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_PardaEngine, AvlTree)->Arg(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_PardaEngine, Treap)->Arg(4)->UseRealTime();

void BM_SequentialOlken(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(olken_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_SequentialOlken);

void BM_IntervalAnalyzer(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interval_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_IntervalAnalyzer);

void BM_BennettKruskal(benchmark::State& state) {
  const auto& trace = shared_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bennett_kruskal_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_BennettKruskal);

void BM_OptStack(benchmark::State& state) {
  // OPT stack distances (linear-stack percolation): run on a prefix — the
  // per-reference cost is O(stack depth).
  const auto& full = shared_trace();
  const std::span<const Addr> trace(full.data(), 1 << 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_distance_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_OptStack);

void BM_NaiveStack(benchmark::State& state) {
  // O(N*M): run on a small prefix only.
  const auto& full = shared_trace();
  const std::span<const Addr> trace(full.data(), 1 << 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_stack_analysis(trace).total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_NaiveStack);

}  // namespace
}  // namespace parda

BENCHMARK_MAIN();
