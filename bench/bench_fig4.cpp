// Reproduces Figure 4: MCF slowdown factor as the number of processors
// varies (8..64) for cache bounds 512Kw..4Mw (scaled), fixed 64Mw pipe.
// The y-axis quantity is Parda critical-path time / original runtime.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "trace/trace_pipe.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

namespace parda::bench {
namespace {

constexpr std::size_t kBlock = 4096;

double measure_orig(Workload& w, std::uint64_t n) {
  w.reset();
  std::vector<Addr> block(kBlock);
  WallTimer t;
  for (std::uint64_t at = 0; at < n; at += block.size()) {
    w.fill(std::span<Addr>(block.data(),
                           std::min<std::uint64_t>(block.size(), n - at)));
  }
  return t.seconds();
}

double measure_parda_crit(const std::vector<Addr>& trace, int np,
                          std::uint64_t bound, std::size_t pipe_words) {
  TracePipe pipe(pipe_words);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += kBlock) {
      const std::size_t hi = std::min(at + kBlock, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  PardaOptions options;
  options.num_procs = np;
  options.bound = bound;
  options.chunk_words =
      std::max<std::size_t>(1024, pipe_words / static_cast<std::size_t>(np));
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  return result.stats.max_busy();
}

}  // namespace
}  // namespace parda::bench

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 2'000'000);
  const std::size_t pipe_words = scaled_bound(64ULL << 20);

  const SpecProfile& mcf = spec_profile("mcf");
  auto workload = make_spec_workload(mcf, scale, /*seed=*/1);
  const std::uint64_t n = std::min<std::uint64_t>(mcf.scaled_n(scale),
                                                  maxrefs);
  const double orig = measure_orig(*workload, n);
  const std::vector<Addr> trace = take_trace(*workload, n);

  const std::uint64_t paper_bounds[] = {512ULL << 10, 1ULL << 20, 2ULL << 20,
                                        4ULL << 20};

  std::printf(
      "Figure 4 reproduction: MCF slowdown factor vs processors, fixed "
      "%s pipe (scale 1/%llu, N=%s, orig=%.3fs)\n"
      "slowdown = busiest-rank critical path / orig\n\n",
      words_human(pipe_words).c_str(),
      static_cast<unsigned long long>(scale), with_commas(n).c_str(), orig);

  TablePrinter table(
      {"processors", "512Kw", "1Mw", "2Mw", "4Mw"});
  for (std::uint64_t np : kRankSweep) {
    std::vector<std::string> row{std::to_string(np)};
    for (std::uint64_t paper_bound : paper_bounds) {
      const double crit = measure_parda_crit(
          trace, static_cast<int>(np), scaled_bound(paper_bound),
          pipe_words);
      row.push_back(TablePrinter::fmt(crit / std::max(orig, 1e-9), 1) + "x");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\npaper shape: performance improves with smaller bounds; ~3.3x "
      "speedup from 8 to 64 processors\n");
  return 0;
}
