// Ablation A1: order-statistic tree engine choice (splay vs AVL vs treap
// vs sorted vector) under the reuse-distance access pattern — the design
// space the paper's Section VII surveys ([13] AVL, [17][18] splay).
#include <benchmark/benchmark.h>

#include <vector>

#include "seq/olken.hpp"
#include "tree/avl_tree.hpp"
#include "tree/splay_tree.hpp"
#include "tree/treap.hpp"
#include "tree/vector_tree.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

template <typename Tree>
void BM_OlkenEngine_Zipf(benchmark::State& state) {
  ZipfWorkload w(static_cast<std::uint64_t>(state.range(0)), 0.9, 7);
  const auto trace = generate_trace(w, 1 << 16);
  for (auto _ : state) {
    const Histogram h = olken_analysis<Tree>(trace);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, SplayTree)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, AvlTree)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, Treap)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, VectorTree)->Arg(1 << 10);

template <typename Tree>
void BM_OlkenEngine_Streaming(benchmark::State& state) {
  // Sequential sweeps: the splay tree's worst-ish case (every access hits
  // the tree's deepest key), the AVL tree's steady state.
  SequentialWorkload w(static_cast<std::uint64_t>(state.range(0)));
  const auto trace = generate_trace(w, 1 << 16);
  for (auto _ : state) {
    const Histogram h = olken_analysis<Tree>(trace);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_TEMPLATE(BM_OlkenEngine_Streaming, SplayTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Streaming, AvlTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Streaming, Treap)->Arg(1 << 12);

template <typename Tree>
void BM_TreeChurn(benchmark::State& state) {
  // Raw insert/count/erase churn at a fixed resident size.
  const std::uint64_t window = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Tree tree;
    for (Timestamp ts = 0; ts < 4 * window; ++ts) {
      tree.insert(ts, ts);
      if (ts >= window) {
        benchmark::DoNotOptimize(tree.count_greater(ts - window));
        tree.erase(ts - window);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(window));
}

BENCHMARK_TEMPLATE(BM_TreeChurn, SplayTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_TreeChurn, AvlTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_TreeChurn, Treap)->Arg(1 << 12);

}  // namespace
}  // namespace parda

BENCHMARK_MAIN();
