// Ablation A1: order-statistic tree engine choice (splay vs AVL vs treap
// vs sorted vector) under the reuse-distance access pattern — the design
// space the paper's Section VII surveys ([13] AVL, [17][18] splay).
//
// Writes a parda.bench.v1 artifact (default BENCH_trees.json, override
// with PARDA_BENCH_JSON): olken_zipf_* points sweep the footprint m on a
// zipf trace, olken_stream_* hit the splay tree's sequential worst case,
// churn_* measure raw insert/count/erase cycles at a fixed resident size.
// Environment: PARDA_BENCH_TREE_REFS (trace length, default 64K),
// PARDA_BENCH_TREE_REPS (default 3; median rep reported).
//
// The google-benchmark registrations remain for ad-hoc filtered runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "seq/olken.hpp"
#include "tree/avl_tree.hpp"
#include "tree/splay_tree.hpp"
#include "tree/treap.hpp"
#include "tree/vector_tree.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ---------------------------------------------------------------------------
// The parda.bench.v1 artifact suite.
// ---------------------------------------------------------------------------

template <typename Fn>
bench::BenchPoint measure(std::string name, std::uint64_t m,
                          std::uint64_t ops, int reps, Fn body) {
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    body();
    secs.push_back(timer.seconds());
  }
  const double med = median(secs);
  bench::BenchPoint p;
  p.name = std::move(name);
  p.params = {{"m", m}};
  p.metrics = {{"ns_per_op", med * 1e9 / static_cast<double>(ops)}};
  return p;
}

template <typename Tree>
void tree_points(const char* tree_name, std::size_t refs, int reps,
                 std::vector<bench::BenchPoint>& points) {
  for (const std::uint64_t m : {std::uint64_t{1} << 10, std::uint64_t{1} << 14}) {
    ZipfWorkload w(m, 0.9, 7);
    const auto trace = generate_trace(w, refs);
    points.push_back(measure(std::string("olken_zipf_") + tree_name, m,
                             trace.size(), reps, [&trace] {
                               benchmark::DoNotOptimize(
                                   olken_analysis<Tree>(trace).total());
                             }));
  }
  {
    // Sequential sweep: every access lands on the tree's deepest key —
    // the splay tree's worst-ish case, the AVL tree's steady state.
    SequentialWorkload w(std::uint64_t{1} << 12);
    const auto trace = generate_trace(w, refs);
    points.push_back(measure(std::string("olken_stream_") + tree_name,
                             std::uint64_t{1} << 12, trace.size(), reps,
                             [&trace] {
                               benchmark::DoNotOptimize(
                                   olken_analysis<Tree>(trace).total());
                             }));
  }
  {
    // Raw insert/count/erase churn at a fixed resident size.
    const std::uint64_t window = std::uint64_t{1} << 12;
    points.push_back(measure(
        std::string("churn_") + tree_name, window, 4 * window, reps,
        [window] {
          Tree tree;
          for (Timestamp ts = 0; ts < 4 * window; ++ts) {
            tree.insert(ts, ts);
            if (ts >= window) {
              benchmark::DoNotOptimize(tree.count_greater(ts - window));
              tree.erase(ts - window);
            }
          }
        }));
  }
}

void run_trees_suite() {
  const auto refs =
      static_cast<std::size_t>(bench::env_u64("PARDA_BENCH_TREE_REFS", 1 << 16));
  const int reps =
      static_cast<int>(bench::env_u64("PARDA_BENCH_TREE_REPS", 3));
  const std::string json_path = bench::bench_json_path("BENCH_trees.json");

  std::vector<bench::BenchPoint> points;
  tree_points<SplayTree>("splay", refs, reps, points);
  tree_points<AvlTree>("avl", refs, reps, points);
  tree_points<Treap>("treap", refs, reps, points);
  // VectorTree is O(m) per erase: zipf/churn only at the small footprint
  // would still dominate the suite at full size, so it stays out of the
  // artifact (run BM_OlkenEngine_Zipf<VectorTree> ad hoc instead).

  std::printf("\ntrees (refs=%zu, reps=%d)\n%-20s %8s %12s\n", refs, reps,
              "point", "m", "ns_per_op");
  for (const bench::BenchPoint& p : points) {
    std::printf("%-20s %8" PRIu64 " %12.2f\n", p.name.c_str(),
                p.params[0].second, p.metrics[0].second);
  }
  bench::write_bench_json(json_path, "trees", points);
}

// ---------------------------------------------------------------------------
// google-benchmark registrations (ad-hoc runs; not part of the artifact).
// ---------------------------------------------------------------------------

template <typename Tree>
void BM_OlkenEngine_Zipf(benchmark::State& state) {
  ZipfWorkload w(static_cast<std::uint64_t>(state.range(0)), 0.9, 7);
  const auto trace = generate_trace(w, 1 << 16);
  for (auto _ : state) {
    const Histogram h = olken_analysis<Tree>(trace);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, SplayTree)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, AvlTree)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, Treap)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Zipf, VectorTree)->Arg(1 << 10);

template <typename Tree>
void BM_OlkenEngine_Streaming(benchmark::State& state) {
  SequentialWorkload w(static_cast<std::uint64_t>(state.range(0)));
  const auto trace = generate_trace(w, 1 << 16);
  for (auto _ : state) {
    const Histogram h = olken_analysis<Tree>(trace);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_TEMPLATE(BM_OlkenEngine_Streaming, SplayTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Streaming, AvlTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_OlkenEngine_Streaming, Treap)->Arg(1 << 12);

template <typename Tree>
void BM_TreeChurn(benchmark::State& state) {
  const std::uint64_t window = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Tree tree;
    for (Timestamp ts = 0; ts < 4 * window; ++ts) {
      tree.insert(ts, ts);
      if (ts >= window) {
        benchmark::DoNotOptimize(tree.count_greater(ts - window));
        tree.erase(ts - window);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(window));
}

BENCHMARK_TEMPLATE(BM_TreeChurn, SplayTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_TreeChurn, AvlTree)->Arg(1 << 12);
BENCHMARK_TEMPLATE(BM_TreeChurn, Treap)->Arg(1 << 12);

}  // namespace
}  // namespace parda

int main(int argc, char** argv) {
  parda::run_trees_suite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
