// Ablation A3: the cache bound (Algorithm 7). Sweeps B and reports
// sequential and parallel analysis time — the paper's Section V claim that
// bounding improves time from O(N log M) to O(N log B).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "seq/bounded.hpp"
#include "seq/olken.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 1'000'000);
  const int np = static_cast<int>(env_u64("PARDA_BENCH_PROCS", 8));

  auto workload = make_spec_workload("astar", scale, /*seed=*/1);
  const std::uint64_t n =
      std::min<std::uint64_t>(spec_profile("astar").scaled_n(scale), maxrefs);
  const std::vector<Addr> trace = take_trace(*workload, n);

  double unbounded_seq = 0;
  std::uint64_t m = 0;
  {
    WallTimer t;
    const Histogram h = olken_analysis(trace);
    unbounded_seq = t.seconds();
    m = h.infinities();
  }

  std::printf(
      "Cache-bound ablation (Algorithm 7), astar profile, N=%s, M=%s\n"
      "unbounded sequential Olken81: %.3fs\n\n",
      with_commas(n).c_str(), with_commas(m).c_str(), unbounded_seq);

  TablePrinter table({"bound B", "seq bounded (s)", "vs unbounded",
                      "parda crit (s)", "resident <= B"});
  for (std::uint64_t b : {64ULL, 256ULL, 1024ULL, 4096ULL, 16384ULL,
                          65536ULL}) {
    WallTimer t;
    const Histogram seq = bounded_analysis(trace, b);
    const double seq_time = t.seconds();

    PardaOptions options;
    options.num_procs = np;
    options.bound = b;
    const PardaResult par = parda_analyze(trace, options);
    if (!(par.hist == seq)) {
      std::fprintf(stderr, "MISMATCH at B=%llu\n",
                   static_cast<unsigned long long>(b));
      return 1;
    }
    table.add_row({words_human(b), TablePrinter::fmt(seq_time, 3),
                   TablePrinter::fmt(seq_time / unbounded_seq, 2) + "x",
                   TablePrinter::fmt(par.stats.max_busy(), 3),
                   b >= m ? "= exact" : "bounded"});
  }
  table.print();
  std::printf(
      "\npaper claim: time drops with B (smaller trees); the bound turns "
      "O(N log M) into O(N log B)\n");
  return 0;
}
