// Ablation A9: multi-level cache hierarchies (the Section I motivation).
// One reuse distance histogram predicts every level of a global-LRU
// hierarchy exactly; a realistic filtered hierarchy drifts from the
// prediction — this harness quantifies both, per SPEC profile.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cachesim/hierarchy.hpp"
#include "seq/olken.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 500'000);

  // L1/L2/L3 capacities scaled like the cache bounds.
  const std::vector<std::uint64_t> capacities{
      scaled_bound(32ULL << 10), scaled_bound(512ULL << 10),
      scaled_bound(8ULL << 20)};

  std::printf(
      "Hierarchy ablation: levels %s / %s / %s (scale 1/%llu)\n"
      "global-LRU hit distribution is predicted exactly by the histogram; "
      "the filtered (real) hierarchy drifts at L2/L3\n\n",
      words_human(capacities[0]).c_str(), words_human(capacities[1]).c_str(),
      words_human(capacities[2]).c_str(),
      static_cast<unsigned long long>(scale));

  TablePrinter table({"benchmark", "L1 hit%", "L2 hit% (pred)",
                      "L2 hit% (filtered)", "L3 hit% (pred)",
                      "L3 hit% (filtered)", "mem%"});
  for (const SpecProfile& profile : spec_profiles()) {
    auto w = make_spec_workload(profile, scale, /*seed=*/1);
    const std::uint64_t n =
        std::min<std::uint64_t>(profile.scaled_n(scale), maxrefs);
    const auto trace = generate_trace(*w, n);
    const Histogram hist = olken_analysis(trace);
    const auto predicted = predict_level_hits(hist, capacities);

    CacheHierarchy filtered(capacities, HierarchyPolicy::kFilteredLru);
    for (Addr a : trace) filtered.access(a);

    const auto pct = [&](double x) {
      return TablePrinter::fmt(100.0 * x / static_cast<double>(n), 1);
    };
    table.add_row(
        {std::string(profile.name),
         pct(static_cast<double>(predicted[0])),
         pct(static_cast<double>(predicted[1])),
         pct(static_cast<double>(filtered.level(1).hits)),
         pct(static_cast<double>(predicted[2])),
         pct(static_cast<double>(filtered.level(2).hits)),
         pct(static_cast<double>(filtered.memory_accesses()))});
  }
  table.print();
  std::printf(
      "\nL1 columns agree by construction (it sees the raw stream); the "
      "filtered L2/L3 deviate where L1 hits starve their recency\n");
  return 0;
}
