// Ingest-path comparison: the same trace analyzed through the three
// TraceSource paths (DESIGN.md "Ingest") —
//   pipe  producer thread + bounded TracePipe + multi-phase streaming
//         algorithm (the historical file path, one copy per reference),
//   mmap  zero-copy mapping, offline algorithm on disjoint views,
//   trz   chunked v2 archive, per-rank parallel decode, offline algorithm
// — at np = 1..8. This is the artifact behind the "ingest at line rate"
// roadmap item: mmap and trz must beat pipe on refs/s (the pipe pays a
// copy, a thread handoff, and the phase machinery per reference).
//
// Writes a parda.bench.v1 artifact (default BENCH_ingest.json, override
// with PARDA_BENCH_JSON); a point's identity is (name="analyze_file",
// np, ingest) — trace length deliberately stays out of the params so a
// small CI run diffs against the committed full-size baseline with
// scripts/bench_diff.py (gate on --metric ns_per_ref; the diff tool
// treats every metric as a cost, so refs/s is reported but not gated).
//
// Environment: PARDA_BENCH_INGEST_REFS (default 1M references),
// PARDA_BENCH_INGEST_REPS (default 3, best rep wins), PARDA_BENCH_JSON.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/worker_pool.hpp"
#include "core/file_analysis.hpp"
#include "trace/source.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

struct IngestFixture {
  std::string trc_path;
  std::string trz_path;
  std::size_t refs = 0;
};

IngestFixture make_fixture() {
  const auto refs = bench::env_u64("PARDA_BENCH_INGEST_REFS", 1 << 20);
  ZipfWorkload w(refs, 0.8, 5);
  const std::vector<Addr> trace = generate_trace(w, refs);
  IngestFixture fx;
  fx.refs = trace.size();
  fx.trc_path = "bench_ingest_tmp.trc";
  fx.trz_path = "bench_ingest_tmp.trz";
  write_trace_binary(fx.trc_path, trace);
  write_trace_chunked(fx.trz_path, trace);
  return fx;
}

double measure(comm::WorkerPool& pool, const IngestFixture& fx,
               IngestMode mode, int np, int reps) {
  const std::string& path =
      mode == IngestMode::kTrz ? fx.trz_path : fx.trc_path;
  PardaOptions options;
  options.num_procs = np;
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    const PardaResult r =
        parda_analyze_file_on(pool, path, options, 1 << 20, mode);
    const double secs = timer.seconds();
    if (r.hist.total() != fx.refs) {
      std::fprintf(stderr, "bench_ingest: %s returned %" PRIu64
                           " references, expected %zu\n",
                   ingest_mode_name(mode), r.hist.total(), fx.refs);
      std::exit(1);
    }
    best = std::min(best, secs);
  }
  return best;
}

void run_ingest_suite() {
  const int reps =
      static_cast<int>(bench::env_u64("PARDA_BENCH_INGEST_REPS", 3));
  const std::string json_path = bench::bench_json_path("BENCH_ingest.json");
  const IngestFixture fx = make_fixture();

  std::vector<bench::BenchPoint> points;
  std::printf("ingest (refs=%zu, reps=%d)\n%-6s %3s %12s %10s\n", fx.refs,
              reps, "ingest", "np", "ns_per_ref", "Mrefs/s");
  for (const int np : {1, 2, 4, 8}) {
    comm::WorkerPool pool(np);  // warm pool shared by the modes at this np
    for (const IngestMode mode :
         {IngestMode::kPipe, IngestMode::kMmap, IngestMode::kTrz}) {
      const double secs = measure(pool, fx, mode, np, reps);
      bench::BenchPoint p;
      p.name = "analyze_file";
      p.params = {{"np", static_cast<std::uint64_t>(np)}};
      p.labels = {{"ingest", ingest_mode_name(mode)}};
      p.metrics = {
          {"ns_per_ref", secs * 1e9 / static_cast<double>(fx.refs)},
          {"mrefs_per_s", static_cast<double>(fx.refs) / secs / 1e6}};
      std::printf("%-6s %3d %12.2f %10.2f\n", ingest_mode_name(mode), np,
                  p.metrics[0].second, p.metrics[1].second);
      points.push_back(std::move(p));
    }
  }
  bench::write_bench_json(json_path, "ingest", points);
  std::remove(fx.trc_path.c_str());
  std::remove(fx.trz_path.c_str());
}

}  // namespace
}  // namespace parda

int main() {
  parda::run_ingest_suite();
  return 0;
}
