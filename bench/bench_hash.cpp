// Ablation A6: the custom robin-hood AddrMap versus std::unordered_map
// under the exact churn pattern of reuse distance analysis (the original
// Parda used GLib's hash table here).
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "hash/addr_map.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

void BM_AddrMap_AnalysisChurn(benchmark::State& state) {
  ZipfWorkload w(static_cast<std::uint64_t>(state.range(0)), 0.9, 3);
  const auto trace = generate_trace(w, 1 << 16);
  for (auto _ : state) {
    AddrMap map;
    Timestamp now = 0;
    for (Addr a : trace) {
      benchmark::DoNotOptimize(map.find(a));
      map.insert_or_assign(a, now++);
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

void BM_StdUnorderedMap_AnalysisChurn(benchmark::State& state) {
  ZipfWorkload w(static_cast<std::uint64_t>(state.range(0)), 0.9, 3);
  const auto trace = generate_trace(w, 1 << 16);
  for (auto _ : state) {
    std::unordered_map<Addr, Timestamp> map;
    Timestamp now = 0;
    for (Addr a : trace) {
      benchmark::DoNotOptimize(map.find(a));
      map.insert_or_assign(a, now++);
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_AddrMap_AnalysisChurn)->Arg(1 << 10)->Arg(1 << 15);
BENCHMARK(BM_StdUnorderedMap_AnalysisChurn)->Arg(1 << 10)->Arg(1 << 15);

void BM_AddrMap_EraseHeavy(benchmark::State& state) {
  Xoshiro256 rng(11);
  std::vector<Addr> keys(1 << 14);
  for (Addr& k : keys) k = rng();
  for (auto _ : state) {
    AddrMap map;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      map.insert_or_assign(keys[i], i);
      if (i >= 1024) map.erase(keys[i - 1024]);
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}

void BM_StdUnorderedMap_EraseHeavy(benchmark::State& state) {
  Xoshiro256 rng(11);
  std::vector<Addr> keys(1 << 14);
  for (Addr& k : keys) k = rng();
  for (auto _ : state) {
    std::unordered_map<Addr, Timestamp> map;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      map.insert_or_assign(keys[i], i);
      if (i >= 1024) map.erase(keys[i - 1024]);
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}

BENCHMARK(BM_AddrMap_EraseHeavy);
BENCHMARK(BM_StdUnorderedMap_EraseHeavy);

}  // namespace
}  // namespace parda

BENCHMARK_MAIN();
