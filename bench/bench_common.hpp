// Shared helpers for the paper-reproduction bench harnesses.
//
// Scaling: every harness honours PARDA_BENCH_SCALE (the SPEC footprint /
// trace-length divisor; default kDefaultSpecScale = 8000, i.e. traces about
// three orders of magnitude below the paper's). Set PARDA_BENCH_SCALE=1000
// for the full-size scaled runs reported in EXPERIMENTS.md.
//
// Timing model: this host has a single core, so wall clock cannot show
// parallel speedup. The harnesses therefore report, for each parallel run,
//   - seq:   measured sequential Olken81 time,
//   - work:  total CPU work across ranks,
//   - crit:  the busiest rank's CPU time — the critical-path lower bound
//            that a one-core-per-rank cluster would approach (what the
//            paper's 64-node runs measure).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "workload/spec.hpp"

namespace parda::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

inline std::uint64_t spec_scale() {
  return env_u64("PARDA_BENCH_SCALE", kDefaultSpecScale);
}

/// Rank counts for scaling sweeps; the paper sweeps 8..64 physical cores,
/// we sweep simulated ranks (threads) with critical-path accounting.
inline const std::uint64_t kRankSweep[] = {8, 16, 32, 64};

/// The paper's cache-bound sweep (512Kw..4Mw), divided by scale so the
/// bound keeps the same proportion to the footprint.
inline std::uint64_t scaled_bound(std::uint64_t paper_words) {
  const std::uint64_t s = spec_scale();
  const std::uint64_t b = paper_words / s;
  return b < 16 ? 16 : b;
}

}  // namespace parda::bench
