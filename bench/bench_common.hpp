// Shared helpers for the paper-reproduction bench harnesses.
//
// Scaling: every harness honours PARDA_BENCH_SCALE (the SPEC footprint /
// trace-length divisor; default kDefaultSpecScale = 8000, i.e. traces about
// three orders of magnitude below the paper's). Set PARDA_BENCH_SCALE=1000
// for the full-size scaled runs reported in EXPERIMENTS.md.
//
// Timing model: this host has a single core, so wall clock cannot show
// parallel speedup. The harnesses therefore report, for each parallel run,
//   - seq:   measured sequential Olken81 time,
//   - work:  total CPU work across ranks,
//   - crit:  the busiest rank's CPU time — the critical-path lower bound
//            that a one-core-per-rank cluster would approach (what the
//            paper's 64-node runs measure).
//
// Timing-source audit (all timing sites, none use system_clock): every
// harness interval is a util/timer.hpp WallTimer (steady_clock — immune to
// wall-clock adjustment) and per-rank busy time is ThreadCpuTimer
// (CLOCK_THREAD_CPUTIME_ID) inside comm::run. The observability layer's
// span tracer and wait timers are likewise steady_clock-based.
//
// Observability: PARDA_METRICS_OUT=FILE and/or PARDA_TRACE_SPANS=FILE
// enable the obs layer for the bench process and dump a parda.metrics.v1
// snapshot / chrome://tracing span file at exit (same formats as
// trace_tool --metrics-out / --trace-spans).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "hist/report.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"
#include "workload/spec.hpp"

namespace parda::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

inline std::string env_str(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? value : fallback;
}

inline std::uint64_t spec_scale() {
  return env_u64("PARDA_BENCH_SCALE", kDefaultSpecScale);
}

/// Rank counts for scaling sweeps; the paper sweeps 8..64 physical cores,
/// we sweep simulated ranks (threads) with critical-path accounting.
inline const std::uint64_t kRankSweep[] = {8, 16, 32, 64};

/// The paper's cache-bound sweep (512Kw..4Mw), divided by scale so the
/// bound keeps the same proportion to the footprint.
inline std::uint64_t scaled_bound(std::uint64_t paper_words) {
  const std::uint64_t s = spec_scale();
  const std::uint64_t b = paper_words / s;
  return b < 16 ? 16 : b;
}

// ---------------------------------------------------------------------------
// The "parda.bench.v1" artifact schema shared by every BENCH_*.json file:
//
//   {"schema": "parda.bench.v1", "bench": "<harness>", "points": [
//     {"name": "<measurement>",
//      "params":  {"np": 8, "transport": "shm", ...}, // identity
//      "metrics": {"wall_seconds": 0.01, ...}}]}      // doubles: compared
//
// A point's identity for regression diffing (scripts/bench_diff.py) is
// (bench, name, params); metrics are what get compared against the
// threshold. Params may be integers (counts, sizes) or strings
// (categorical axes such as the comm transport); bench_diff defaults a
// missing "transport" to "threads" so pre-transport baselines keep
// matching. Harnesses build BenchPoints and call write_bench_json.
// ---------------------------------------------------------------------------

struct BenchPoint {
  std::string name;
  std::vector<std::pair<std::string, std::uint64_t>> params;
  /// Categorical identity axes, emitted into "params" as strings.
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> metrics;
};

inline std::string bench_json_path(const char* fallback) {
  const char* env = std::getenv("PARDA_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : fallback;
}

inline void write_bench_json(const std::string& path,
                             const std::string& bench,
                             const std::vector<BenchPoint>& points) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("parda.bench.v1");
  w.key("bench").value(bench);
  w.key("points").begin_array();
  for (const BenchPoint& p : points) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("params").begin_object();
    for (const auto& [k, v] : p.params) w.key(k).value(v);
    for (const auto& [k, v] : p.labels) w.key(k).value(v);
    w.end_object();
    w.key("metrics").begin_object();
    for (const auto& [k, v] : p.metrics) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_text_file(path, w.take() + "\n");
  std::printf("wrote %s\n", path.c_str());
}

namespace detail {

inline void write_obs_snapshots() {
  const char* metrics = std::getenv("PARDA_METRICS_OUT");
  if (metrics != nullptr && *metrics != '\0') {
    write_text_file(metrics, obs::registry().to_json() + "\n");
  }
  const char* spans = std::getenv("PARDA_TRACE_SPANS");
  if (spans != nullptr && *spans != '\0') {
    write_text_file(spans, obs::tracer().to_chrome_json() + "\n");
  }
}

/// PARDA_METRICS_OUT / PARDA_TRACE_SPANS env hook: enables obs for the
/// whole bench process and registers the exit-time snapshot writer.
struct ObsEnvHook {
  ObsEnvHook() {
    const char* metrics = std::getenv("PARDA_METRICS_OUT");
    const char* spans = std::getenv("PARDA_TRACE_SPANS");
    if ((metrics == nullptr || *metrics == '\0') &&
        (spans == nullptr || *spans == '\0')) {
      return;
    }
    // Materialize the global registry and tracer BEFORE registering the
    // atexit writer: their function-local statics are then destroyed
    // after it runs (reverse registration order).
    obs::registry();
    obs::tracer();
    obs::set_enabled(true);
    std::atexit(&write_obs_snapshots);
  }
};
inline const ObsEnvHook kObsEnvHook{};

}  // namespace detail

}  // namespace parda::bench
