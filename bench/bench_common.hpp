// Shared helpers for the paper-reproduction bench harnesses.
//
// Scaling: every harness honours PARDA_BENCH_SCALE (the SPEC footprint /
// trace-length divisor; default kDefaultSpecScale = 8000, i.e. traces about
// three orders of magnitude below the paper's). Set PARDA_BENCH_SCALE=1000
// for the full-size scaled runs reported in EXPERIMENTS.md.
//
// Timing model: this host has a single core, so wall clock cannot show
// parallel speedup. The harnesses therefore report, for each parallel run,
//   - seq:   measured sequential Olken81 time,
//   - work:  total CPU work across ranks,
//   - crit:  the busiest rank's CPU time — the critical-path lower bound
//            that a one-core-per-rank cluster would approach (what the
//            paper's 64-node runs measure).
//
// Timing-source audit (all timing sites, none use system_clock): every
// harness interval is a util/timer.hpp WallTimer (steady_clock — immune to
// wall-clock adjustment) and per-rank busy time is ThreadCpuTimer
// (CLOCK_THREAD_CPUTIME_ID) inside comm::run. The observability layer's
// span tracer and wait timers are likewise steady_clock-based.
//
// Observability: PARDA_METRICS_OUT=FILE and/or PARDA_TRACE_SPANS=FILE
// enable the obs layer for the bench process and dump a parda.metrics.v1
// snapshot / chrome://tracing span file at exit (same formats as
// trace_tool --metrics-out / --trace-spans).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "hist/report.hpp"
#include "obs/obs.hpp"
#include "workload/spec.hpp"

namespace parda::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

inline std::uint64_t spec_scale() {
  return env_u64("PARDA_BENCH_SCALE", kDefaultSpecScale);
}

/// Rank counts for scaling sweeps; the paper sweeps 8..64 physical cores,
/// we sweep simulated ranks (threads) with critical-path accounting.
inline const std::uint64_t kRankSweep[] = {8, 16, 32, 64};

/// The paper's cache-bound sweep (512Kw..4Mw), divided by scale so the
/// bound keeps the same proportion to the footprint.
inline std::uint64_t scaled_bound(std::uint64_t paper_words) {
  const std::uint64_t s = spec_scale();
  const std::uint64_t b = paper_words / s;
  return b < 16 ? 16 : b;
}

namespace detail {

inline void write_obs_snapshots() {
  const char* metrics = std::getenv("PARDA_METRICS_OUT");
  if (metrics != nullptr && *metrics != '\0') {
    write_text_file(metrics, obs::registry().to_json() + "\n");
  }
  const char* spans = std::getenv("PARDA_TRACE_SPANS");
  if (spans != nullptr && *spans != '\0') {
    write_text_file(spans, obs::tracer().to_chrome_json() + "\n");
  }
}

/// PARDA_METRICS_OUT / PARDA_TRACE_SPANS env hook: enables obs for the
/// whole bench process and registers the exit-time snapshot writer.
struct ObsEnvHook {
  ObsEnvHook() {
    const char* metrics = std::getenv("PARDA_METRICS_OUT");
    const char* spans = std::getenv("PARDA_TRACE_SPANS");
    if ((metrics == nullptr || *metrics == '\0') &&
        (spans == nullptr || *spans == '\0')) {
      return;
    }
    // Materialize the global registry and tracer BEFORE registering the
    // atexit writer: their function-local statics are then destroyed
    // after it runs (reverse registration order).
    obs::registry();
    obs::tracer();
    obs::set_enabled(true);
    std::atexit(&write_obs_snapshots);
  }
};
inline const ObsEnvHook kObsEnvHook{};

}  // namespace detail

}  // namespace parda::bench
