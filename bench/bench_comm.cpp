// Ablation A4: the thread-backed message-passing runtime itself — message
// latency, bandwidth, barrier, and reduction cost. These are the "MPI"
// overheads inside every Parda run.
//
// Besides the google-benchmark microbenchmarks, this harness runs a
// data-movement pattern suite (broadcast / scatter / pipeline, each in its
// copying and zero-copy form) across every in-process wire (threads, shm,
// tcp) and writes the copy-count accounting to BENCH_comm.json (override
// the path with PARDA_BENCH_JSON). This is the artifact that shows the
// zero-copy transport actually removes copies rather than merely
// relabeling them — and what each byte costs once it has to cross a real
// wire.
//
// Environment: PARDA_BENCH_PROCS (default 8), PARDA_BENCH_WORDS (default
// 64Ki words per payload), PARDA_BENCH_ROUNDS (default 20),
// PARDA_BENCH_TRANSPORTS (comma-separated specs, default
// "threads,shm,tcp"), PARDA_BENCH_JSON (default BENCH_comm.json).
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "comm/comm.hpp"
#include "comm/transport/spec.hpp"
#include "obs/runtime.hpp"
#include "obs/telemetry.hpp"
#include "util/timer.hpp"

namespace parda::comm {
namespace {

void BM_PingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> payload(
      static_cast<std::size_t>(state.range(1)), 42);
  for (auto _ : state) {
    run(2, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, payload);
          benchmark::DoNotOptimize(comm.recv<std::uint64_t>(1, 2));
        } else {
          benchmark::DoNotOptimize(comm.recv<std::uint64_t>(0, 1));
          comm.send(0, 2, payload);
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * 2);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * 2 *
                          static_cast<std::int64_t>(payload.size() * 8));
}

// (rounds, payload words): latency-bound and bandwidth-bound points.
BENCHMARK(BM_PingPong)->Args({1000, 1})->Args({100, 1 << 16})->UseRealTime();

void BM_Barrier(benchmark::State& state) {
  const auto np = static_cast<int>(state.range(0));
  const int rounds = 500;
  for (auto _ : state) {
    run(np, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds);
}

BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->UseRealTime();

void BM_ReduceSum(benchmark::State& state) {
  const auto np = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> mine(
      static_cast<std::size_t>(state.range(1)), 1);
  const int rounds = 50;
  for (auto _ : state) {
    run(np, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) {
        benchmark::DoNotOptimize(comm.reduce_sum_u64(
            std::span<const std::uint64_t>(mine), 0, 3));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds);
}

BENCHMARK(BM_ReduceSum)->Args({4, 1 << 10})->Args({8, 1 << 14})->UseRealTime();

void BM_SpawnTeardown(benchmark::State& state) {
  // The fixed cost of comm::run itself (thread spawn + join per phase).
  const auto np = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run(np, [](Comm&) {});
  }
}

BENCHMARK(BM_SpawnTeardown)->Arg(2)->Arg(8)->Arg(16)->UseRealTime();

void BM_MoveSend(benchmark::State& state) {
  // Zero-copy point-to-point: move the buffer in, move it back out.
  const auto words = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    run(2, [&](Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<std::uint64_t> payload(words, 42);
        for (int i = 0; i < 100; ++i) {
          comm.send(1, 1, std::move(payload));
          payload = comm.recv<std::uint64_t>(1, 2);
        }
      } else {
        for (int i = 0; i < 100; ++i) {
          auto payload = comm.recv<std::uint64_t>(0, 1);
          comm.send(0, 2, std::move(payload));
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200 * static_cast<std::int64_t>(words * 8));
}

BENCHMARK(BM_MoveSend)->Arg(1 << 16)->UseRealTime();

// ---------------------------------------------------------------------------
// Telemetry-plane overheads: what one parda.telemetry.v1 frame costs to
// build on a sender and to ingest at the rank-0 hub. The distributed
// channel does each ~4 times/second/process (PARDA_TELEMETRY_INTERVAL_MS),
// so these bound the plane's steady-state cost.
// ---------------------------------------------------------------------------

/// A sender's telemetry state at a representative size: a populated span
/// ring plus live metrics, everything local so neither the pattern suite
/// nor the comm micro-benchmarks see the fixture. obs is enabled only
/// while the fixture lives (SpanTracer::record is a no-op otherwise).
struct TelemetryFixture {
  bool prev_enabled;
  obs::Registry reg;
  obs::SpanTracer spans{std::size_t{1} << 10};
  obs::ClockSync clock{1500, 80, true, 8};

  TelemetryFixture() : prev_enabled(obs::enabled()) {
    obs::set_enabled(true);
    for (int i = 0; i < 512; ++i) {
      const std::int64_t t0 = i * 1000;
      spans.record(t0, t0 + 700, i % 2 == 0 ? "analyze" : "recv-wait",
                   static_cast<std::uint32_t>(i % 4));
    }
    reg.counter("bench.telemetry_refs").add(123456);
    reg.gauge("bench.telemetry_depth").set(7);
    reg.timer("bench.telemetry_wait").record_ns(4096);
  }
  ~TelemetryFixture() { obs::set_enabled(prev_enabled); }

  std::string frame(std::uint64_t seq) const {
    return obs::make_telemetry_frame(1, seq, false, clock, reg, spans);
  }
};

void BM_TelemetryFrame(benchmark::State& state) {
  const TelemetryFixture fx;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.frame(++seq));
  }
}

BENCHMARK(BM_TelemetryFrame);

void BM_TelemetryIngest(benchmark::State& state) {
  const TelemetryFixture fx;
  const std::string frame = fx.frame(1);
  obs::TelemetryHub hub;  // private hub: the global one serves /metrics
  for (auto _ : state) {
    hub.ingest_frame(frame);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}

BENCHMARK(BM_TelemetryIngest);

/// The same two costs as JSON points, so scripts/bench_diff.py gates them
/// alongside the data-movement patterns (new names are reported, not
/// compared, on the first run against an older baseline).
std::vector<bench::BenchPoint> telemetry_overhead_points() {
  const TelemetryFixture fx;
  constexpr int kFrames = 256;

  WallTimer build_timer;
  std::string frame;
  for (int i = 0; i < kFrames; ++i) frame = fx.frame(i + 1);
  const double build_seconds = build_timer.seconds();

  obs::TelemetryHub hub;
  WallTimer ingest_timer;
  for (int i = 0; i < kFrames; ++i) hub.ingest_frame(frame);
  const double ingest_seconds = ingest_timer.seconds();

  const auto point = [&](const char* name, double wall) {
    bench::BenchPoint bp;
    bp.name = name;
    bp.params = {{"spans", 512}, {"frames", kFrames}};
    bp.metrics = {{"wall_seconds", wall},
                  {"frame_bytes", static_cast<double>(frame.size())}};
    return bp;
  };
  std::printf("telemetry overhead: build %.1f us/frame, ingest %.1f "
              "us/frame, %zu bytes/frame\n",
              build_seconds / kFrames * 1e6, ingest_seconds / kFrames * 1e6,
              frame.size());
  return {point("telemetry_frame", build_seconds),
          point("telemetry_ingest", ingest_seconds)};
}

// ---------------------------------------------------------------------------
// Data-movement pattern suite: each Parda communication shape in its
// copying and zero-copy form, with the runtime's own accounting.
// ---------------------------------------------------------------------------

struct PatternResult {
  std::string name;
  std::string transport;  // TransportSpec kind the pattern ran over
  int np;
  std::uint64_t words;   // payload words per round
  int rounds;
  RunStats stats;
};

/// Pattern context: which wire to run over plus the shared sweep sizes.
struct PatternEnv {
  RunOptions options;
  std::string transport;  // spec kind, for the point identity
  int np;
  std::size_t words;
  int rounds;
};

PatternResult broadcast_copying(const PatternEnv& env) {
  const int np = env.np;
  const std::size_t words = env.words;
  const int rounds = env.rounds;
  const RunStats stats = run(np, [&](Comm& comm) {
    const std::vector<std::uint64_t> block(words, 7);
    for (int i = 0; i < rounds; ++i) {
      std::vector<std::uint64_t> data;
      if (comm.rank() == 0) data = block;  // fresh owned copy each round
      data = comm.broadcast(std::move(data), 0, i + 1);
      benchmark::DoNotOptimize(data.data());
    }
  }, env.options);
  return {"broadcast_copying", env.transport, np, words, rounds, stats};
}

PatternResult broadcast_view(const PatternEnv& env) {
  const int np = env.np;
  const std::size_t words = env.words;
  const int rounds = env.rounds;
  const RunStats stats = run(np, [&](Comm& comm) {
    for (int i = 0; i < rounds; ++i) {
      std::vector<std::uint64_t> data;
      if (comm.rank() == 0) data.assign(words, 7);
      const View<std::uint64_t> v =
          comm.broadcast_view(std::move(data), 0, i + 1);
      benchmark::DoNotOptimize(v.data());
    }
  }, env.options);
  return {"broadcast_view", env.transport, np, words, rounds, stats};
}

PatternResult scatter_copying(const PatternEnv& env) {
  // The pre-zero-copy streaming shape: the root splits each phase block
  // into np owned chunk vectors and scatters them.
  const int np = env.np;
  const std::size_t words = env.words;
  const int rounds = env.rounds;
  const RunStats stats = run(np, [&](Comm& comm) {
    for (int i = 0; i < rounds; ++i) {
      std::vector<std::vector<std::uint64_t>> pieces;
      if (comm.rank() == 0) {
        const std::vector<std::uint64_t> block(words, 9);
        pieces.assign(static_cast<std::size_t>(np), {});
        const std::size_t chunk = words / static_cast<std::size_t>(np);
        for (int r = 0; r < np; ++r) {
          const auto lo = static_cast<std::size_t>(r) * chunk;
          const std::size_t hi =
              r == np - 1 ? words : lo + chunk;
          pieces[static_cast<std::size_t>(r)].assign(
              block.begin() + static_cast<std::ptrdiff_t>(lo),
              block.begin() + static_cast<std::ptrdiff_t>(hi));
        }
      }
      const auto mine = comm.scatterv(pieces, 0, i + 1);  // lvalue: copies
      benchmark::DoNotOptimize(mine.data());
    }
  }, env.options);
  return {"scatter_copying", env.transport, np, words, rounds, stats};
}

PatternResult scatter_view(const PatternEnv& env) {
  // The streaming driver's shape: one shared block, np slice views.
  const int np = env.np;
  const std::size_t words = env.words;
  const int rounds = env.rounds;
  const RunStats stats = run(np, [&](Comm& comm) {
    for (int i = 0; i < rounds; ++i) {
      std::vector<std::uint64_t> block;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
      if (comm.rank() == 0) {
        block.assign(words, 9);
        const std::uint64_t chunk = words / static_cast<std::uint64_t>(np);
        for (int r = 0; r < np; ++r) {
          const std::uint64_t lo = static_cast<std::uint64_t>(r) * chunk;
          const std::uint64_t hi = r == np - 1 ? words : lo + chunk;
          slices.emplace_back(lo, hi - lo);
        }
      }
      const View<std::uint64_t> mine = comm.scatterv_view(
          std::move(block),
          std::span<const std::pair<std::uint64_t, std::uint64_t>>(slices),
          0, i + 1);
      benchmark::DoNotOptimize(mine.data());
    }
  }, env.options);
  return {"scatter_view", env.transport, np, words, rounds, stats};
}

PatternResult pipeline_copying(const PatternEnv& env) {
  // Parda's local-infinity chain with span (copying) sends.
  const int np = env.np;
  const std::size_t words = env.words;
  const int rounds = env.rounds;
  const RunStats stats = run(np, [&](Comm& comm) {
    const int r = comm.rank();
    const std::vector<std::uint64_t> payload(words, 3);
    for (int i = 0; i < rounds; ++i) {
      if (r > 0) {
        comm.send(r - 1, 5, std::span<const std::uint64_t>(payload));
      }
      if (r < np - 1) {
        benchmark::DoNotOptimize(comm.recv<std::uint64_t>(r + 1, 5));
      }
    }
  }, env.options);
  return {"pipeline_copying", env.transport, np, words, rounds, stats};
}

PatternResult pipeline_move(const PatternEnv& env) {
  // The same chain with move-in / view-out transport.
  const int np = env.np;
  const std::size_t words = env.words;
  const int rounds = env.rounds;
  const RunStats stats = run(np, [&](Comm& comm) {
    const int r = comm.rank();
    for (int i = 0; i < rounds; ++i) {
      if (r > 0) {
        comm.send(r - 1, 5, std::vector<std::uint64_t>(words, 3));
      }
      if (r < np - 1) {
        const View<std::uint64_t> v = comm.recv_view<std::uint64_t>(r + 1, 5);
        benchmark::DoNotOptimize(v.data());
      }
    }
  }, env.options);
  return {"pipeline_move", env.transport, np, words, rounds, stats};
}

void write_json(const std::string& path,
                const std::vector<PatternResult>& results) {
  std::vector<bench::BenchPoint> out;
  out.reserve(results.size());
  for (const PatternResult& r : results) {
    bench::BenchPoint bp;
    bp.name = r.name;
    bp.params = {{"np", static_cast<std::uint64_t>(r.np)},
                 {"words", r.words},
                 {"rounds", static_cast<std::uint64_t>(r.rounds)}};
    bp.labels = {{"transport", r.transport}};
    bp.metrics = {
        {"wall_seconds", r.stats.wall_seconds},
        {"max_busy_seconds", r.stats.max_busy()},
        {"messages", static_cast<double>(r.stats.total_messages())},
        {"bytes_sent", static_cast<double>(r.stats.total_bytes())},
        {"bytes_copied", static_cast<double>(r.stats.total_bytes_copied())},
        {"bytes_shared", static_cast<double>(r.stats.total_bytes_shared())},
    };
    out.push_back(std::move(bp));
  }
  for (bench::BenchPoint& bp : telemetry_overhead_points()) {
    out.push_back(std::move(bp));
  }
  bench::write_bench_json(path, "comm", out);
}

/// Splits the PARDA_BENCH_TRANSPORTS list ("threads,shm,tcp") into
/// validated in-process specs. Distributed clauses (rank=, peers=) are
/// rejected: the suite runs every rank inside this one bench process.
std::vector<TransportSpec> transport_sweep(int np) {
  const std::string text =
      bench::env_str("PARDA_BENCH_TRANSPORTS", "threads,shm,tcp");
  std::vector<TransportSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) {
      TransportSpec spec = TransportSpec::parse(item);
      spec.validate(np);
      specs.push_back(std::move(spec));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return specs;
}

void run_pattern_suite() {
  const int np = static_cast<int>(bench::env_u64("PARDA_BENCH_PROCS", 8));
  const auto words =
      static_cast<std::size_t>(bench::env_u64("PARDA_BENCH_WORDS", 1 << 16));
  const int rounds =
      static_cast<int>(bench::env_u64("PARDA_BENCH_ROUNDS", 20));
  const std::string json_path = bench::bench_json_path("BENCH_comm.json");

  using PatternFn = PatternResult (*)(const PatternEnv&);
  const PatternFn patterns[] = {broadcast_copying, broadcast_view,
                                scatter_copying,   scatter_view,
                                pipeline_copying,  pipeline_move};

  std::vector<PatternResult> results;
  for (const TransportSpec& spec : transport_sweep(np)) {
    PatternEnv env;
    env.options.transport = spec;
    env.transport = transport_kind_name(spec.kind);
    env.np = np;
    env.words = words;
    env.rounds = rounds;
    for (const PatternFn fn : patterns) results.push_back(fn(env));
  }

  std::printf(
      "\ndata-movement patterns (np=%d, words=%zu, rounds=%d)\n"
      "%-20s %-8s %10s %14s %14s %14s %10s %10s\n",
      np, words, rounds, "pattern", "wire", "msgs", "bytes_sent",
      "bytes_copied", "bytes_shared", "wall_ms", "busy_ms");
  for (const PatternResult& r : results) {
    std::printf("%-20s %-8s %10" PRIu64 " %14" PRIu64 " %14" PRIu64
                " %14" PRIu64 " %10.2f %10.2f\n",
                r.name.c_str(), r.transport.c_str(),
                r.stats.total_messages(), r.stats.total_bytes(),
                r.stats.total_bytes_copied(), r.stats.total_bytes_shared(),
                r.stats.wall_seconds * 1e3, r.stats.max_busy() * 1e3);
  }
  write_json(json_path, results);
}

}  // namespace
}  // namespace parda::comm

int main(int argc, char** argv) {
  parda::comm::run_pattern_suite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
