// Ablation A4: the thread-backed message-passing runtime itself — message
// latency, bandwidth, barrier, and reduction cost. These are the "MPI"
// overheads inside every Parda run.
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/comm.hpp"

namespace parda::comm {
namespace {

void BM_PingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> payload(
      static_cast<std::size_t>(state.range(1)), 42);
  for (auto _ : state) {
    run(2, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, payload);
          benchmark::DoNotOptimize(comm.recv<std::uint64_t>(1, 2));
        } else {
          benchmark::DoNotOptimize(comm.recv<std::uint64_t>(0, 1));
          comm.send(0, 2, payload);
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * 2);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds * 2 *
                          static_cast<std::int64_t>(payload.size() * 8));
}

// (rounds, payload words): latency-bound and bandwidth-bound points.
BENCHMARK(BM_PingPong)->Args({1000, 1})->Args({100, 1 << 16})->UseRealTime();

void BM_Barrier(benchmark::State& state) {
  const auto np = static_cast<int>(state.range(0));
  const int rounds = 500;
  for (auto _ : state) {
    run(np, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds);
}

BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->UseRealTime();

void BM_ReduceSum(benchmark::State& state) {
  const auto np = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> mine(
      static_cast<std::size_t>(state.range(1)), 1);
  const int rounds = 50;
  for (auto _ : state) {
    run(np, [&](Comm& comm) {
      for (int i = 0; i < rounds; ++i) {
        benchmark::DoNotOptimize(comm.reduce_sum_u64(
            std::span<const std::uint64_t>(mine), 0, 3));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rounds);
}

BENCHMARK(BM_ReduceSum)->Args({4, 1 << 10})->Args({8, 1 << 14})->UseRealTime();

void BM_SpawnTeardown(benchmark::State& state) {
  // The fixed cost of comm::run itself (thread spawn + join per phase).
  const auto np = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run(np, [](Comm&) {});
  }
}

BENCHMARK(BM_SpawnTeardown)->Arg(2)->Arg(8)->Arg(16)->UseRealTime();

}  // namespace
}  // namespace parda::comm

BENCHMARK_MAIN();
