// Reproduces Table IV of the paper: for each SPEC CPU2006 profile,
// measures every stage of the Figure 3 pipeline —
//   Orig    the program alone (trace generation into a scratch buffer)
//   Pin     + per-access instrumentation callback (mini-Pin hook)
//   Pipe    + transfer through the bounded pipe, no analysis
//   Olken81 sequential splay-tree analysis [13]
//   Parda   the parallel bounded online analysis (np ranks, bound 2Mw/scale)
// and prints measured M, N, absolute seconds, and the slowdown factors the
// paper reports, next to the paper's own numbers.
//
// Environment: PARDA_BENCH_SCALE (default 8000), PARDA_BENCH_PROCS
// (default 8), PARDA_BENCH_MAXREFS (default 2,000,000).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/parda.hpp"
#include "hist/mrc.hpp"
#include "hist/report.hpp"
#include "seq/olken.hpp"
#include "trace/trace_pipe.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/spec.hpp"

namespace parda::bench {
namespace {

struct Row {
  const SpecProfile* profile;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  double orig = 0;
  double pin = 0;
  double pipe = 0;
  double olken = 0;
  double parda_crit = 0;  // busiest-rank CPU time (cluster estimate)
  double parda_wall = 0;  // measured wall on this 1-core host
};

constexpr std::size_t kBlock = 4096;

/// "Orig": the program runs; addresses are consumed in registers only.
double time_orig(Workload& w, std::uint64_t n) {
  w.reset();
  std::vector<Addr> block(kBlock);
  WallTimer t;
  Addr sink = 0;
  for (std::uint64_t at = 0; at < n; at += block.size()) {
    w.fill(std::span<Addr>(block.data(),
                           std::min<std::uint64_t>(block.size(), n - at)));
    sink ^= block[0];
  }
  const double s = t.seconds();
  if (sink == 0x12345678) std::fprintf(stderr, "?");
  return s;
}

/// "Pin": the program runs under instrumentation; each access invokes the
/// analysis hook, which buffers it (what a Pin memory-trace tool does).
double time_pin(Workload& w, std::uint64_t n) {
  w.reset();
  std::vector<Addr> block(kBlock);
  std::vector<Addr> out;
  out.reserve(kBlock);
  WallTimer t;
  std::uint64_t checksum = 0;
  for (std::uint64_t at = 0; at < n; at += block.size()) {
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(block.size(),
                                                         n - at));
    w.fill(std::span<Addr>(block.data(), take));
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(block[i]);  // the instrumentation hook
      if (out.size() == kBlock) {
        checksum ^= out.back();
        out.clear();
      }
    }
  }
  const double s = t.seconds();
  if (checksum == 0x12345678) std::fprintf(stderr, "?");
  return s;
}

/// "Pipe": instrumented run + transfer through the bounded pipe to a
/// consumer that discards the data (no analysis).
double time_pipe(Workload& w, std::uint64_t n, std::size_t pipe_words) {
  w.reset();
  TracePipe pipe(pipe_words);
  WallTimer t;
  std::thread producer([&] {
    std::vector<Addr> block(kBlock);
    for (std::uint64_t at = 0; at < n; at += kBlock) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(kBlock, n - at));
      w.fill(std::span<Addr>(block.data(), take));
      pipe.write(std::span<const Addr>(block.data(), take));
    }
    pipe.close();
  });
  std::uint64_t drained = 0;
  std::vector<Addr> sink;
  while (pipe.read(sink)) drained += sink.size();
  producer.join();
  const double s = t.seconds();
  if (drained != n) std::fprintf(stderr, "pipe drain mismatch\n");
  return s;
}

Row run_benchmark(const SpecProfile& profile, std::uint64_t scale,
                  int np, std::uint64_t maxrefs) {
  Row row;
  row.profile = &profile;
  row.n = std::min<std::uint64_t>(profile.scaled_n(scale), maxrefs);

  auto workload = make_spec_workload(profile, scale, /*seed=*/1);
  row.orig = time_orig(*workload, row.n);
  row.pin = time_pin(*workload, row.n);
  const std::size_t pipe_words = scaled_bound(64ULL << 20);  // "64Mw pipe"
  row.pipe = time_pipe(*workload, row.n, pipe_words);

  // Materialize once for the sequential engine and as the pipe source.
  const std::vector<Addr> trace = take_trace(*workload, row.n);
  {
    WallTimer t;
    const Histogram h = olken_analysis(trace);
    row.olken = t.seconds();
    row.m = h.infinities();
    // Optional plot data: per-benchmark histogram + MRC CSVs.
    if (const char* dir = std::getenv("PARDA_BENCH_CSV_DIR");
        dir != nullptr && *dir != '\0') {
      const std::string base =
          std::string(dir) + "/" + std::string(profile.name);
      write_text_file(base + "_hist.csv", histogram_to_csv_log2(h));
      write_text_file(base + "_mrc.csv",
                      mrc_to_csv(miss_ratio_curve_pow2(
                          h, h.max_distance() + 2)));
    }
  }
  {
    TracePipe pipe(pipe_words);
    std::thread producer([&] {
      for (std::size_t at = 0; at < trace.size(); at += kBlock) {
        const std::size_t hi = std::min(at + kBlock, trace.size());
        pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
      }
      pipe.close();
    });
    PardaOptions options;
    options.num_procs = np;
    options.bound = scaled_bound(2ULL << 20);  // "2Mw cache bound"
    options.chunk_words = std::max<std::size_t>(
        1024, pipe_words / static_cast<std::size_t>(np));
    WallTimer t;
    const PardaResult result = parda_analyze_stream(pipe, options);
    row.parda_wall = t.seconds();
    producer.join();
    // Critical path = trace production (sequential, unavoidable per the
    // paper's Section VI-A) overlapped with the busiest analysis rank.
    row.parda_crit = std::max(result.stats.max_busy(), row.pin);
  }
  return row;
}

}  // namespace
}  // namespace parda::bench

int main() {
  using namespace parda;
  using namespace parda::bench;

  const std::uint64_t scale = spec_scale();
  const int np = static_cast<int>(env_u64("PARDA_BENCH_PROCS", 8));
  const std::uint64_t maxrefs = env_u64("PARDA_BENCH_MAXREFS", 2'000'000);

  std::printf(
      "Table IV reproduction: scale=1/%llu, np=%d, bound=%s, maxrefs=%s\n"
      "(paper: 64 procs, 2Mw bound, 64Mw pipe on a Xeon E5640 cluster)\n\n",
      static_cast<unsigned long long>(scale), np,
      words_human(scaled_bound(2ULL << 20)).c_str(),
      with_commas(maxrefs).c_str());

  TablePrinter table({"benchmark", "M", "N", "Orig", "Pin", "Pipe",
                      "Olken81", "Parda", "olken x", "parda x",
                      "paper olken x", "paper parda x"});
  std::vector<double> measured_factors;
  std::vector<double> paper_factors;
  for (const SpecProfile& profile : spec_profiles()) {
    const Row row = run_benchmark(profile, scale, np, maxrefs);
    const double olken_x = row.olken / std::max(row.orig, 1e-9);
    const double parda_x = row.parda_crit / std::max(row.orig, 1e-9);
    const double paper_olken_x = profile.paper_olken / profile.paper_orig;
    const double paper_parda_x = profile.paper_parda / profile.paper_orig;
    measured_factors.push_back(parda_x);
    paper_factors.push_back(paper_parda_x);
    table.add_row({std::string(profile.name), with_commas(row.m),
                   with_commas(row.n), TablePrinter::fmt(row.orig, 3),
                   TablePrinter::fmt(row.pin, 3),
                   TablePrinter::fmt(row.pipe, 3),
                   TablePrinter::fmt(row.olken, 3),
                   TablePrinter::fmt(row.parda_crit, 3),
                   TablePrinter::fmt(olken_x, 1),
                   TablePrinter::fmt(parda_x, 1),
                   TablePrinter::fmt(paper_olken_x, 1),
                   TablePrinter::fmt(paper_parda_x, 1)});
  }
  table.print();
  std::printf(
      "\nParda column: busiest-rank critical path (overlapped with trace "
      "generation), the quantity the paper's 64-core wall clock measures."
      "\ngeomean Parda slowdown: measured %.1fx vs paper %.1fx (paper range "
      "13-50x)\n",
      geomean(measured_factors), geomean(paper_factors));
  return 0;
}
